"""Framing tests for the campaign-service wire protocol."""

import pickle
import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    ChecksumError,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)

_HEADER = struct.Struct(">QI")


def _frame(payload: bytes, checksum=None) -> bytes:
    """Hand-craft one wire frame (checksum defaults to the correct CRC)."""
    if checksum is None:
        checksum = zlib.crc32(payload)
    return _HEADER.pack(len(payload), checksum) + payload


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        send_message(a, {"op": "ping", "n": 3})
        assert recv_message(b) == {"op": "ping", "n": 3}

    def test_multiple_frames_stay_separate(self, pair):
        a, b = pair
        for i in range(5):
            send_message(a, {"seq": i})
        assert [recv_message(b)["seq"] for _ in range(5)] == list(range(5))

    def test_numpy_payload_survives_bit_exact(self, pair):
        a, b = pair
        values = np.random.default_rng(0).normal(size=(4, 7))
        send_message(a, {"values": values})
        np.testing.assert_array_equal(recv_message(b)["values"], values)

    def test_large_frame_crosses_kernel_buffer(self, pair):
        """A multi-megabyte frame exercises the short-read loop."""
        a, b = pair
        values = np.arange(300_000, dtype=np.float64)
        done = {}

        def sender():
            send_message(a, {"values": values})
            done["sent"] = True

        thread = threading.Thread(target=sender)
        thread.start()
        received = recv_message(b)
        thread.join()
        assert done["sent"]
        np.testing.assert_array_equal(received["values"], values)


class TestErrors:
    def test_eof_before_header_is_orderly_close(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_message(b)

    def test_eof_mid_frame_raises_plain_connection_error(self, pair):
        a, b = pair
        a.sendall(_HEADER.pack(100, 0) + b"only a few bytes")
        a.close()
        with pytest.raises(ConnectionError) as excinfo:
            recv_message(b)
        assert not isinstance(excinfo.value, ConnectionClosed)

    def test_eof_mid_header_raises_plain_connection_error(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00\x00")  # a torn header is mid-frame, not orderly
        a.close()
        with pytest.raises(ConnectionError) as excinfo:
            recv_message(b)
        assert not isinstance(excinfo.value, ConnectionClosed)

    def test_oversize_header_rejected_before_allocation(self, pair):
        a, b = pair
        a.sendall(_HEADER.pack(MAX_MESSAGE_BYTES + 1, 0))
        with pytest.raises(ProtocolError):
            recv_message(b)

    def test_oversize_send_refused(self, pair, monkeypatch):
        a, _ = pair
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        with pytest.raises(ProtocolError):
            send_message(a, {"blob": b"x" * 1024})

    def test_garbage_payload_is_protocol_error(self, pair):
        a, b = pair
        a.sendall(_frame(b"\x00not pickle"))
        with pytest.raises(ProtocolError):
            recv_message(b)


class TestChecksum:
    def test_checksum_mismatch_raises_before_unpickle(self, pair):
        a, b = pair
        payload = pickle.dumps({"op": "ping"})
        a.sendall(_frame(payload, checksum=zlib.crc32(payload) ^ 0xDEADBEEF))
        with pytest.raises(ChecksumError):
            recv_message(b)

    def test_checksum_error_is_retryable_protocol_error(self):
        assert issubclass(ChecksumError, ProtocolError)
        assert issubclass(ProtocolError, ConnectionError)

    def test_flipped_payload_byte_fails_crc_not_unpickle(self, pair):
        a, b = pair
        payload = bytearray(pickle.dumps({"values": list(range(50))}))
        payload[len(payload) // 2] ^= 0xFF
        a.sendall(
            _HEADER.pack(len(payload), zlib.crc32(b"")) + bytes(payload)
        )
        with pytest.raises(ChecksumError):
            recv_message(b)

    def test_corrupt_shim_triggers_checksum_error(self, pair):
        """The chaos shim damages the payload after CRC — the receiver's
        integrity check fires exactly as for real in-flight corruption."""
        a, b = pair
        send_message(a, {"op": "ping", "n": 3}, corrupt=True)
        with pytest.raises(ChecksumError):
            recv_message(b)

    def test_clean_frame_after_corrupt_one_still_parses(self, pair):
        a, b = pair
        send_message(a, {"seq": 0}, corrupt=True)
        send_message(a, {"seq": 1})
        with pytest.raises(ChecksumError):
            recv_message(b)
        assert recv_message(b) == {"seq": 1}
