"""Framing tests for the campaign-service wire protocol."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    recv_message,
    send_message,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        send_message(a, {"op": "ping", "n": 3})
        assert recv_message(b) == {"op": "ping", "n": 3}

    def test_multiple_frames_stay_separate(self, pair):
        a, b = pair
        for i in range(5):
            send_message(a, {"seq": i})
        assert [recv_message(b)["seq"] for _ in range(5)] == list(range(5))

    def test_numpy_payload_survives_bit_exact(self, pair):
        a, b = pair
        values = np.random.default_rng(0).normal(size=(4, 7))
        send_message(a, {"values": values})
        np.testing.assert_array_equal(recv_message(b)["values"], values)

    def test_large_frame_crosses_kernel_buffer(self, pair):
        """A multi-megabyte frame exercises the short-read loop."""
        a, b = pair
        values = np.arange(300_000, dtype=np.float64)
        done = {}

        def sender():
            send_message(a, {"values": values})
            done["sent"] = True

        thread = threading.Thread(target=sender)
        thread.start()
        received = recv_message(b)
        thread.join()
        assert done["sent"]
        np.testing.assert_array_equal(received["values"], values)


class TestErrors:
    def test_eof_before_header_raises(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionError):
            recv_message(b)

    def test_eof_mid_frame_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">Q", 100) + b"only a few bytes")
        a.close()
        with pytest.raises(ConnectionError):
            recv_message(b)

    def test_oversize_header_rejected_before_allocation(self, pair):
        a, b = pair
        a.sendall(struct.pack(">Q", MAX_MESSAGE_BYTES + 1))
        with pytest.raises(ProtocolError):
            recv_message(b)

    def test_oversize_send_refused(self, pair, monkeypatch):
        a, _ = pair
        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64)
        with pytest.raises(ProtocolError):
            send_message(a, {"blob": b"x" * 1024})

    def test_garbage_payload_is_protocol_error(self, pair):
        a, b = pair
        payload = b"\x00not pickle"
        a.sendall(struct.pack(">Q", len(payload)) + payload)
        with pytest.raises(ProtocolError):
            recv_message(b)
