"""End-to-end campaign-service tests: bit-identity, zero-redundant
accounting, worker-death re-sharding, and the daemon subprocess.

The module-scoped cache directory keeps trained tiny-preset models warm
across tests (exactly what a real daemon does); each test that needs an
isolated result store roots one in its own tmp directory.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, run_robustness_sweep
from repro.eval.cache import ResultStore
from repro.faults import additive_sweep, bitflip_sweep, multiplicative_sweep
from repro.models import all_methods, proposed
from repro.serve import CampaignService, ServiceClient, ServiceUnavailable


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    mp = pytest.MonkeyPatch()
    path = tmp_path_factory.mktemp("serve_cache")
    mp.setenv("REPRO_CACHE_DIR", str(path))
    clear_memory_cache()
    yield path
    mp.undo()
    clear_memory_cache()


def _service_pair(tmp_path, workers=2, **kwargs):
    store = ResultStore(root=tmp_path / "store")
    service = CampaignService(workers=workers, store=store, **kwargs)
    return service, store


def _assert_sweeps_equal(a, b):
    assert sorted(a.curves) == sorted(b.curves)
    for name in a.curves:
        np.testing.assert_array_equal(a.curves[name].means, b.curves[name].means)
        np.testing.assert_array_equal(a.curves[name].stds, b.curves[name].stds)


class TestServiceSweep:
    def test_bit_identical_and_zero_redundant_on_repeat(
        self, shared_cache, tmp_path
    ):
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1, 0.2])
        task = build_task("audio", preset="tiny", seed=0)
        reference = run_robustness_sweep(
            task, methods, specs, preset="tiny", seed=0, n_runs=3,
            use_cache=False,
        )
        service, _ = _service_pair(tmp_path)
        with service, ServiceClient(service.address) as client:
            first, stats1 = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3
            )
            second, stats2 = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3
            )
        _assert_sweeps_equal(reference, first)
        _assert_sweeps_equal(reference, second)
        assert stats1["redundant_cells"] == 0
        # The repeat is served entirely from the store: nothing computed,
        # nothing redundant, hit counters prove it.
        assert stats2["computed_cells"] == 0
        assert stats2["redundant_cells"] == 0
        assert stats2["served_cells"] == stats1["served_cells"] + \
            stats1["computed_cells"]
        assert stats2["store"]["puts"] == 0 and stats2["store"]["misses"] == 0

    def test_per_worker_throughput_rows(self, shared_cache, tmp_path):
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1, 0.2])
        service, _ = _service_pair(tmp_path, workers=2)
        with service, ServiceClient(service.address) as client:
            _, stats = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3
            )
        assert stats["workers"]  # at least one worker computed something
        for row in stats["workers"]:
            assert row["cells"] > 0
            assert row["cells_per_sec"] > 0
        assert sum(r["cells"] for r in stats["workers"]) == \
            stats["computed_cells"]

    def test_partial_frames_stream_per_scenario(self, shared_cache, tmp_path):
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1])
        frames = []
        service, _ = _service_pair(tmp_path)
        with service, ServiceClient(service.address) as client:
            client.sweep("audio", methods, specs, preset="tiny", seed=0,
                         n_runs=3, on_partial=frames.append)
            assert sorted(f["scenario"] for f in frames) == [0, 1]
            assert all(f["source"] == "computed" for f in frames)
            frames.clear()
            client.sweep("audio", methods, specs, preset="tiny", seed=0,
                         n_runs=3, on_partial=frames.append)
        assert all(f["source"] == "store" for f in frames)

    def test_overlapping_grid_recomputes_only_new_scenarios(
        self, shared_cache, tmp_path
    ):
        methods = [proposed()]
        service, _ = _service_pair(tmp_path)
        with service, ServiceClient(service.address) as client:
            _, stats1 = client.sweep(
                "audio", methods, bitflip_sweep([0.0, 0.1]),
                preset="tiny", seed=0, n_runs=3,
            )
            # The wider grid overlaps the first two levels exactly.
            _, stats2 = client.sweep(
                "audio", methods, bitflip_sweep([0.0, 0.1, 0.2]),
                preset="tiny", seed=0, n_runs=3,
            )
        assert stats2["served_cells"] == stats1["served_cells"] + \
            stats1["computed_cells"]
        assert stats2["redundant_cells"] == 0
        assert stats2["computed_cells"] == 3  # only the new level's cells

    def test_store_and_transport_seconds_accounted(
        self, shared_cache, tmp_path
    ):
        from repro.tensor import plan as _plan

        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1])
        service, _ = _service_pair(tmp_path)
        with service, ServiceClient(service.address) as client:
            with _plan.profiled() as stages:
                _, stats = client.sweep(
                    "audio", methods, specs, preset="tiny", seed=0, n_runs=3
                )
        assert stages["transport"] > 0  # client-side wire time recorded
        assert stats["store_seconds"] >= 0


class TestWorkerDeath:
    def test_chaos_death_reshards_deterministically(
        self, shared_cache, tmp_path
    ):
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1, 0.2, 0.4])
        chaos = {"worker": 0, "after_units": 0}
        runs = []
        for attempt in range(2):
            service, _ = _service_pair(
                tmp_path / f"attempt{attempt}", workers=2
            )
            with service, ServiceClient(service.address) as client:
                runs.append(client.sweep(
                    "audio", methods, specs, preset="tiny", seed=0, n_runs=3,
                    use_store=False, chaos=chaos,
                ))
        (sweep_a, stats_a), (sweep_b, stats_b) = runs
        assert stats_a["worker_deaths"] == 1
        assert stats_a["reshards"] >= 1
        assert stats_a["rounds"] >= 2
        assert stats_a["assignments"] == stats_b["assignments"]
        _assert_sweeps_equal(sweep_a, sweep_b)

    def test_death_result_bit_identical_to_clean_run(
        self, shared_cache, tmp_path
    ):
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1, 0.2, 0.4])
        service, _ = _service_pair(tmp_path / "chaos", workers=2)
        with service, ServiceClient(service.address) as client:
            with_death, stats = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3,
                use_store=False, chaos={"worker": 0, "after_units": 0},
            )
        assert stats["worker_deaths"] == 1
        service, _ = _service_pair(tmp_path / "clean", workers=2)
        with service, ServiceClient(service.address) as client:
            clean, _ = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3,
                use_store=False,
            )
        _assert_sweeps_equal(with_death, clean)

    def test_all_workers_dead_is_an_error(self, shared_cache, tmp_path):
        # max_respawns=0: with any respawn budget the lone worker would
        # simply be revived and the sweep would succeed.
        service, _ = _service_pair(tmp_path, workers=1, max_respawns=0)
        with service, ServiceClient(service.address) as client:
            with pytest.raises(RuntimeError, match="service error"):
                client.sweep(
                    "audio", [proposed()], bitflip_sweep([0.0, 0.1]),
                    preset="tiny", seed=0, n_runs=3,
                    use_store=False, chaos={"worker": 0, "after_units": 0},
                )

    def test_retry_after_partial_store_is_not_redundant(
        self, shared_cache, tmp_path
    ):
        """A re-issued unit serves scenarios an earlier round landed."""
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1, 0.2])
        store = ResultStore(root=tmp_path / "store")
        service = CampaignService(workers=2, store=store)
        with service, ServiceClient(service.address) as client:
            _, stats1 = client.sweep(
                "audio", methods, [specs[1]], preset="tiny", seed=0, n_runs=3
            )
            _, stats2 = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3
            )
        assert stats2["redundant_cells"] == 0
        assert stats2["served_cells"] >= 3  # the pre-landed scenario


class TestServiceMisc:
    def test_ping_and_stats(self, shared_cache, tmp_path):
        service, _ = _service_pair(tmp_path, workers=3)
        with service, ServiceClient(service.address) as client:
            assert client.ping()["workers"] == 3
            stats = client.stats()
            assert stats["requests"] == 0
            client.sweep("audio", [proposed()], bitflip_sweep([0.0, 0.1]),
                         preset="tiny", seed=0, n_runs=2)
            assert client.stats()["requests"] == 1

    def test_unknown_op_is_an_error(self, shared_cache, tmp_path):
        service, _ = _service_pair(tmp_path)
        with service, ServiceClient(service.address) as client:
            with pytest.raises(RuntimeError, match="unknown op"):
                client._roundtrip({"op": "frobnicate"})

    def test_unknown_task_is_an_error_not_a_crash(
        self, shared_cache, tmp_path
    ):
        service, _ = _service_pair(tmp_path)
        with service, ServiceClient(service.address) as client:
            with pytest.raises(RuntimeError, match="service error"):
                client.sweep("nonexistent", [proposed()],
                             bitflip_sweep([0.0, 0.1]), preset="tiny")
            # The daemon survives the bad request.
            assert client.ping()["pong"]

    def test_shutdown_stops_service(self, shared_cache, tmp_path):
        service, _ = _service_pair(tmp_path)
        service.start()
        with ServiceClient(service.address) as client:
            client.shutdown()
        assert service._stopped.is_set()


class TestFaultRecovery:
    def test_shutdown_with_sweep_in_flight_fails_cleanly(
        self, shared_cache, tmp_path
    ):
        """stop() mid-sweep closes the connection and winds workers down
        instead of serving from a half-dead daemon."""
        # Two methods: the stop lands while the first method's frames
        # stream, so the second method's are guaranteed still pending
        # (not yet computed, so they cannot sit in the socket buffer).
        methods = all_methods(conventional_norm="batch")[:2]
        specs = bitflip_sweep([0.0, 0.1, 0.2])
        service, store = _service_pair(tmp_path, workers=2)
        service.start()
        killed = []

        def kill_on_first_frame(frame):
            if not killed:
                killed.append(frame)
                service.stop()

        with ServiceClient(service.address, retries=0) as client:
            with pytest.raises(ServiceUnavailable):
                client.sweep(
                    "audio", methods, specs, preset="tiny", seed=0, n_runs=3,
                    on_partial=kill_on_first_frame,
                )
        assert killed  # the sweep was genuinely in flight
        assert service._stopped.is_set()
        # A fresh daemon over the same store serves the re-issued sweep
        # without recomputing anything a landed unit already stored.
        service2 = CampaignService(workers=2, store=store)
        with service2, ServiceClient(service2.address) as client:
            sweep, stats = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3
            )
        assert stats["redundant_cells"] == 0
        task = build_task("audio", preset="tiny", seed=0)
        reference = run_robustness_sweep(
            task, methods, specs, preset="tiny", seed=0, n_runs=3,
            use_cache=False,
        )
        _assert_sweeps_equal(reference, sweep)

    def test_client_reconnects_after_daemon_restart(
        self, shared_cache, tmp_path
    ):
        """One client object spans a daemon restart on the same port: the
        retry loop re-dials, and the re-issued sweep is entirely
        store-served — zero computed, zero redundant cells."""
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1, 0.2])
        store = ResultStore(root=tmp_path / "store")
        service1 = CampaignService(workers=2, store=store).start()
        port = service1.port
        client = ServiceClient(service1.address, retries=3, backoff=0.05)
        try:
            first, stats1 = client.sweep(
                "audio", methods, specs, preset="tiny", seed=0, n_runs=3
            )
            assert stats1["computed_cells"] > 0
            service1.stop()
            service2 = CampaignService(
                port=port, workers=2, store=ResultStore(root=tmp_path / "store")
            ).start()
            try:
                # The client still holds the dead socket; the retry loop
                # must notice and reconnect transparently.
                assert client.ping()["pong"]
                second, stats2 = client.sweep(
                    "audio", methods, specs, preset="tiny", seed=0, n_runs=3
                )
            finally:
                service2.stop()
        finally:
            client.close()
            service1.stop()
        _assert_sweeps_equal(first, second)
        assert stats2["computed_cells"] == 0
        assert stats2["redundant_cells"] == 0
        assert stats2["served_cells"] == \
            stats1["served_cells"] + stats1["computed_cells"]

    def test_failed_request_resets_socket_for_next_call(
        self, shared_cache, tmp_path
    ):
        service, _ = _service_pair(tmp_path)
        service.start()
        port = service.port
        with ServiceClient(service.address, retries=0) as client:
            assert client.ping()["pong"]
            service.stop()
            with pytest.raises(ServiceUnavailable):
                client.ping()
            assert client._sock is None  # close()-after-error reset it
            service2, _ = _service_pair(tmp_path / "again")
            service2.port = port
            with service2:
                assert client.ping()["pong"]  # fresh dial, same client


_FAULT_SWEEPS = {
    "bitflip": bitflip_sweep,
    "additive": additive_sweep,
    "multiplicative": multiplicative_sweep,
}

_CONVENTIONAL_NORM = {"image": "batch", "audio": "batch", "co2": "batch",
                      "vessels": "group"}


class TestFullMatrix:
    """Acceptance sweep: every topology × all methods × fault kinds."""

    @pytest.mark.parametrize("task_name", ["image", "audio", "co2", "vessels"])
    @pytest.mark.parametrize("fault", ["bitflip", "additive"])
    def test_topology_matrix_bit_identical_zero_redundant(
        self, shared_cache, tmp_path, task_name, fault
    ):
        methods = all_methods(
            conventional_norm=_CONVENTIONAL_NORM[task_name]
        )
        specs = _FAULT_SWEEPS[fault]([0.0, 0.1])
        task = build_task(task_name, preset="tiny", seed=0)
        reference = run_robustness_sweep(
            task, methods, specs, preset="tiny", seed=0, n_runs=2,
            use_cache=False,
        )
        service, _ = _service_pair(tmp_path, workers=2)
        with service, ServiceClient(service.address) as client:
            first, stats1 = client.sweep(
                task_name, methods, specs, preset="tiny", seed=0, n_runs=2
            )
            second, stats2 = client.sweep(
                task_name, methods, specs, preset="tiny", seed=0, n_runs=2
            )
        _assert_sweeps_equal(reference, first)
        _assert_sweeps_equal(reference, second)
        assert stats1["redundant_cells"] == 0
        assert stats2["computed_cells"] == 0
        assert stats2["redundant_cells"] == 0


class TestDaemonSubprocess:
    def test_python_m_repro_serve_round_trip(self, shared_cache, tmp_path):
        """The real daemon process serves a sweep and shuts down cleanly."""
        env = {
            "REPRO_CACHE_DIR": str(shared_cache),
            "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            "PATH": "/usr/bin:/bin",
        }
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--workers", "2"],
            stdout=subprocess.PIPE, text=True, env=env, cwd=str(tmp_path),
        )
        try:
            banner = proc.stdout.readline()
            address = banner.strip().rsplit(" ", 1)[-1]
            with ServiceClient(address) as client:
                assert client.ping()["pong"]
                sweep, stats = client.sweep(
                    "audio", [proposed()], bitflip_sweep([0.0, 0.1]),
                    preset="tiny", seed=0, n_runs=2,
                )
                assert stats["redundant_cells"] == 0
                assert set(sweep.curves) == {"proposed"}
                client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
