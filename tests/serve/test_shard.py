"""Deterministic-sharding tests: unit derivation and LPT assignment."""

import pytest

from repro.faults import FaultSpec
from repro.faults.executor import WorkCell
from repro.serve import ShardUnit, assign_units, shard_units


def _grid(n_runs=3, levels=(0.1, 0.2, 0.3), kind="bitflip"):
    """Fault-free scenario 0 plus a stackable same-kind severity group."""
    cells = [WorkCell(0, 0, FaultSpec(kind="none", level=0.0))]
    for scenario, level in enumerate(levels, start=1):
        spec = FaultSpec(kind=kind, level=level)
        cells.extend(WorkCell(scenario, run, spec) for run in range(n_runs))
    return cells


class TestShardUnits:
    def test_kind_groups_become_units(self):
        units = shard_units(_grid())
        assert [u.kind for u in units] == ["none", "bitflip"]
        assert [u.n_cells for u in units] == [1, 9]
        assert units[1].ranges == ((1, 4), (4, 7), (7, 10))

    def test_unit_indices_are_positional(self):
        units = shard_units(_grid())
        assert [u.index for u in units] == [0, 1]

    def test_mixed_kinds_split_units(self):
        cells = _grid(levels=(0.1, 0.2), kind="bitflip")
        spec = FaultSpec(kind="additive", level=0.3)
        cells.extend(WorkCell(3, run, spec) for run in range(3))
        units = shard_units(cells)
        assert [u.kind for u in units] == ["none", "bitflip", "additive"]

    def test_empty_grid(self):
        assert shard_units([]) == []


class TestAssignment:
    def _units(self, sizes):
        return [
            ShardUnit(index=i, kind="bitflip", ranges=((0, n),), n_cells=n)
            for i, n in enumerate(sizes)
        ]

    def test_every_worker_id_is_a_key(self):
        assignment = assign_units(self._units([4]), [0, 1, 2])
        assert sorted(assignment) == [0, 1, 2]
        assert sum(len(v) for v in assignment.values()) == 1

    def test_deterministic(self):
        units = self._units([5, 3, 3, 2, 2])
        first = assign_units(units, [0, 1])
        second = assign_units(list(units), [0, 1])
        assert first == second

    def test_heaviest_first_balance(self):
        units = self._units([5, 3, 3, 2, 2])
        assignment = assign_units(units, [0, 1])
        loads = {
            wid: sum(u.n_cells for u in assigned)
            for wid, assigned in assignment.items()
        }
        assert max(loads.values()) - min(loads.values()) <= 5

    def test_survivor_reshard_is_deterministic(self):
        units = self._units([5, 3, 3, 2, 2])
        full = assign_units(units, [0, 1, 2])
        # Worker 1 dies mid-round: its units return to the pool and the
        # survivors re-run the same pure assignment function.
        pending = sorted(full[1], key=lambda u: u.index)
        reshard_a = assign_units(pending, [0, 2])
        reshard_b = assign_units(list(pending), [0, 2])
        assert reshard_a == reshard_b
        assert sorted(reshard_a) == [0, 2]

    def test_ties_break_by_lowest_worker_id(self):
        assignment = assign_units(self._units([2]), [7, 3, 5])
        owner = next(wid for wid, us in assignment.items() if us)
        assert owner == 3

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            assign_units(self._units([1]), [])

    def test_duplicate_worker_ids_rejected(self):
        with pytest.raises(ValueError):
            assign_units(self._units([1]), [0, 0])


class TestReviveWorkers:
    def test_budget_gates_revival(self):
        from repro.serve import revive_workers

        assert revive_workers([0, 2], {}, max_respawns=1) == [0, 2]
        assert revive_workers([0, 2], {0: 1}, max_respawns=1) == [2]
        assert revive_workers([0, 2], {0: 1, 2: 1}, max_respawns=1) == []
        assert revive_workers([0, 2], {0: 1, 2: 1}, max_respawns=2) == [0, 2]

    def test_zero_budget_never_revives(self):
        from repro.serve import revive_workers

        assert revive_workers([0, 1, 2], {}, max_respawns=0) == []

    def test_order_is_deterministic(self):
        from repro.serve import revive_workers

        assert revive_workers([3, 1, 2], {}, max_respawns=1) == [1, 2, 3]
        assert revive_workers((2, 0), {}, 1) == revive_workers([0, 2], {}, 1)
