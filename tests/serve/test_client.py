"""Client-side fault-tolerance tests: deadlines, deterministic backoff,
the retry loop, and error classification — no daemon required except
where a real socket is the point.
"""

import socket
import threading

import pytest

from repro.serve import (
    ChecksumError,
    IncompleteSweepError,
    ProtocolError,
    ServiceClient,
    ServiceUnavailable,
)
from repro.serve.client import backoff_delay


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestBackoff:
    def test_deterministic_per_request_and_attempt(self):
        assert backoff_delay("req", 0, 0.25) == backoff_delay("req", 0, 0.25)
        assert backoff_delay("req", 0, 0.25) != backoff_delay("req", 1, 0.25)
        assert backoff_delay("req", 0, 0.25) != backoff_delay("other", 0, 0.25)

    def test_exponential_envelope_with_jitter(self):
        for attempt in range(5):
            delay = backoff_delay("req", attempt, 0.25)
            assert 0.5 * 0.25 * 2**attempt <= delay < 0.25 * 2**attempt

    def test_cap_bounds_the_wait(self):
        assert backoff_delay("req", 30, 1.0, cap=2.0) <= 2.0


class TestRetryLoop:
    def test_transient_failure_recovers(self, monkeypatch):
        monkeypatch.setattr("repro.serve.client.time.sleep", lambda s: None)
        client = ServiceClient(("127.0.0.1", 1), retries=2)
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise ConnectionResetError("transient")
            return {"ok": True}

        assert client._with_retries("rid", flaky) == {"ok": True}
        assert calls == [0, 1, 2]  # attempt number increments each retry

    def test_exhaustion_raises_service_unavailable_with_cause(
        self, monkeypatch
    ):
        monkeypatch.setattr("repro.serve.client.time.sleep", lambda s: None)
        client = ServiceClient(("127.0.0.1", 1), retries=1)

        def always_down(attempt):
            raise ConnectionRefusedError("nope")

        with pytest.raises(ServiceUnavailable) as excinfo:
            client._with_retries("rid", always_down)
        assert isinstance(excinfo.value.__cause__, ConnectionRefusedError)

    def test_application_errors_are_not_retried(self, monkeypatch):
        monkeypatch.setattr("repro.serve.client.time.sleep", lambda s: None)
        client = ServiceClient(("127.0.0.1", 1), retries=5)
        calls = []

        def bad_request(attempt):
            calls.append(attempt)
            raise RuntimeError("service error: unknown task")

        with pytest.raises(RuntimeError, match="unknown task"):
            client._with_retries("rid", bad_request)
        assert calls == [0]  # re-sending a bad request cannot help

    def test_retries_zero_fails_fast(self, monkeypatch):
        monkeypatch.setattr("repro.serve.client.time.sleep", lambda s: None)
        client = ServiceClient(("127.0.0.1", 1), retries=0)
        calls = []

        def down(attempt):
            calls.append(attempt)
            raise ConnectionRefusedError

        with pytest.raises(ServiceUnavailable):
            client._with_retries("rid", down)
        assert calls == [0]


class TestDeadlines:
    def test_connect_refused_surfaces_as_unavailable(self):
        client = ServiceClient(
            ("127.0.0.1", _free_port()), connect_timeout=0.5, retries=0
        )
        with pytest.raises(ServiceUnavailable):
            client.ping()
        assert client._sock is None  # the failed attempt reset the socket

    def test_request_timeout_trips_on_a_silent_server(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(listener.accept()[0]), daemon=True
        )
        thread.start()
        client = ServiceClient(
            listener.getsockname(), request_timeout=0.2, retries=0,
        )
        try:
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.ping()  # the server accepts but never replies
            assert isinstance(excinfo.value.__cause__, socket.timeout)
        finally:
            client.close()
            thread.join()
            for sock in accepted:
                sock.close()
            listener.close()


class TestErrorTaxonomy:
    def test_retryable_hierarchy(self):
        # Everything the retry loop must catch is a ConnectionError.
        for exc_type in (ChecksumError, ProtocolError, IncompleteSweepError,
                         ServiceUnavailable):
            assert issubclass(exc_type, ConnectionError)

    def test_incomplete_reply_raises_retryable_error(self):
        from repro.faults import bitflip_sweep
        from repro.models import proposed

        specs = bitflip_sweep([0.0, 0.1])
        stats = {"task": {"name": "audio", "metric_name": "acc",
                          "higher_is_better": True}}
        with pytest.raises(IncompleteSweepError, match="missing"):
            ServiceClient._assemble(
                [proposed()], specs, stats, {"proposed": {0: [1.0]}}
            )
