"""Deterministic chaos-engine tests: every injected fault kind —
worker kill, worker hang, frame drop, frame delay, frame corruption —
individually and composed, with recovery pinned bit-identical to the
cold serial reference and every counter asserted.

``REPRO_CHAOS_SEED`` (default 1234) seeds the composed schedule so CI
can pin one replayable fault sequence; the per-kind tests use ``p=1``
schedules, which fire identically under any seed.
"""

import os
import socket
import struct

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, run_robustness_sweep
from repro.eval.cache import ResultStore
from repro.faults import bitflip_sweep
from repro.models import proposed
from repro.serve import CampaignService, ChaosSchedule, LegacyKill, ServiceClient
from repro.serve.chaos import EVENT_KINDS, as_schedule, event_index

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))

#: Counters that must be zero on a clean (chaos-free) run.
RECOVERY_KEYS = ("worker_deaths", "hangs", "respawns", "retries",
                 "frames_dropped", "frames_delayed", "frames_corrupted")


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    mp = pytest.MonkeyPatch()
    path = tmp_path_factory.mktemp("chaos_cache")
    mp.setenv("REPRO_CACHE_DIR", str(path))
    clear_memory_cache()
    yield path
    mp.undo()
    clear_memory_cache()


@pytest.fixture(scope="module")
def reference(shared_cache):
    """Cold serial reference sweep the chaos runs must match bit-for-bit."""
    task = build_task("audio", preset="tiny", seed=0)
    return run_robustness_sweep(
        task, [proposed()], _specs(), preset="tiny", seed=0, n_runs=3,
        use_cache=False,
    )


def _specs():
    return bitflip_sweep([0.0, 0.1, 0.2])


def _service(tmp_path, name, **kwargs):
    kwargs.setdefault("workers", 2)
    store = ResultStore(root=tmp_path / name / "store")
    return CampaignService(store=store, **kwargs), store


def _chaos_sweep(service, chaos, client_options=None, **sweep_options):
    with service, ServiceClient(
        service.address, **(client_options or {"backoff": 0.05})
    ) as client:
        sweep, stats = client.sweep(
            "audio", [proposed()], _specs(), preset="tiny", seed=0, n_runs=3,
            chaos=chaos, **sweep_options,
        )
        daemon_stats = client.stats()
    return sweep, stats, daemon_stats


def _assert_matches(reference, sweep):
    for name in reference.curves:
        np.testing.assert_array_equal(
            reference.curves[name].means, sweep.curves[name].means
        )
        np.testing.assert_array_equal(
            reference.curves[name].stds, sweep.curves[name].stds
        )


class TestScheduleDeterminism:
    def test_fires_is_a_pure_function(self):
        schedule = ChaosSchedule(seed=7, kinds=("kill",), p=0.5, max_trials=3)
        draws = [schedule.fires("kill", 0, "worker", 1, 4) for _ in range(10)]
        assert len(set(draws)) == 1  # same site, same answer, every time

    def test_distinct_sites_draw_independently(self):
        schedule = ChaosSchedule(seed=7, kinds=("kill",), p=0.5, max_trials=99)
        draws = {
            (t, w): schedule.fires("kill", t, "worker", w, 0)
            for t in range(8) for w in range(8)
        }
        assert len(set(draws.values())) == 2  # both outcomes occur

    def test_max_trials_bounds_every_kind(self):
        schedule = ChaosSchedule(
            seed=CHAOS_SEED, kinds=EVENT_KINDS, p=1.0, max_trials=2
        )
        assert schedule.worker_event(0, 1, 0) is not None
        assert schedule.worker_event(0, 2, 0) is None  # past the budget
        assert schedule.frame_event(1, "proposed", 0) is not None
        assert schedule.frame_event(2, "proposed", 0) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos event kinds"):
            ChaosSchedule(seed=0, kinds=("explode",))

    def test_event_index_is_stable_and_order_sensitive(self):
        assert event_index(1, "worker", 2) == event_index(1, "worker", 2)
        assert event_index(1, 2) != event_index(2, 1)

    def test_legacy_dict_normalizes_to_one_shot_kill(self):
        legacy = as_schedule({"worker": 1, "after_units": 2})
        assert isinstance(legacy, LegacyKill)
        assert legacy.worker_event(1, 0, 2) == "kill"
        assert legacy.worker_event(1, 0, 1) is None  # not enough units yet
        assert legacy.worker_event(0, 0, 2) is None  # wrong worker
        assert legacy.worker_event(1, 1, 2) is None  # wrong round
        assert legacy.frame_event(0, "proposed", 0) is None

    def test_as_schedule_passes_schedules_through(self):
        schedule = ChaosSchedule(seed=1, kinds=("hang",))
        assert as_schedule(schedule) is schedule
        assert as_schedule(None) is None

    def test_schedule_survives_the_wire(self):
        import pickle

        schedule = ChaosSchedule(
            seed=CHAOS_SEED, kinds=EVENT_KINDS, p=0.25, max_trials=2
        )
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule
        assert clone.worker_event(1, 0, 0) == schedule.worker_event(1, 0, 0)


class TestWorkerChaos:
    def test_kill_schedule_recovers_bit_identical(
        self, shared_cache, tmp_path, reference
    ):
        chaos = ChaosSchedule(seed=CHAOS_SEED, kinds=("kill",), p=1.0,
                              max_trials=1)
        service, _ = _service(tmp_path, "kill")
        sweep, stats, _ = _chaos_sweep(service, chaos)
        _assert_matches(reference, sweep)
        assert stats["worker_deaths"] >= 1
        assert stats["respawns"] >= 1  # the dead worker came back re-warmed
        assert stats["retries"] >= 1  # its units were re-issued
        assert stats["hangs"] == 0
        assert stats["rounds"] >= 2

    def test_kill_schedule_replays_identically(
        self, shared_cache, tmp_path, reference
    ):
        chaos = ChaosSchedule(seed=CHAOS_SEED, kinds=("kill",), p=1.0,
                              max_trials=1)
        runs = []
        for replay in range(2):
            service, _ = _service(tmp_path, f"replay{replay}")
            runs.append(_chaos_sweep(service, chaos))
        (sweep_a, stats_a, _), (sweep_b, stats_b, _) = runs
        _assert_matches(sweep_a, sweep_b)
        assert stats_a["assignments"] == stats_b["assignments"]
        assert stats_a["worker_deaths"] == stats_b["worker_deaths"]
        assert stats_a["respawns"] == stats_b["respawns"]

    def test_hang_schedule_watchdog_recovers_bit_identical(
        self, shared_cache, tmp_path, reference
    ):
        chaos = ChaosSchedule(seed=CHAOS_SEED, kinds=("hang",), p=1.0,
                              max_trials=1)
        service, _ = _service(
            tmp_path, "hang", workers=1, unit_deadline=3.0,
            watchdog_tick=0.05,
        )
        sweep, stats, _ = _chaos_sweep(service, chaos)
        _assert_matches(reference, sweep)
        assert stats["hangs"] == 1  # declared dead by the watchdog
        assert stats["respawns"] == 1
        assert stats["retries"] >= 1
        assert stats["worker_deaths"] == 0  # a hang is not a crash

    def test_respawn_budget_exhaustion_degrades_to_error(
        self, shared_cache, tmp_path
    ):
        # p=1 with an unbounded trial budget kills the lone worker in
        # every round; once its single respawn is spent the sweep must
        # fail loudly rather than loop.
        chaos = ChaosSchedule(seed=CHAOS_SEED, kinds=("kill",), p=1.0,
                              max_trials=1000)
        service, _ = _service(tmp_path, "budget", workers=1, max_respawns=1)
        with service, ServiceClient(service.address, backoff=0.05) as client:
            with pytest.raises(RuntimeError, match="service error"):
                client.sweep("audio", [proposed()], _specs(), preset="tiny",
                             seed=0, n_runs=3, chaos=chaos)


class TestFrameChaos:
    def test_frame_drop_retries_to_completion(
        self, shared_cache, tmp_path, reference
    ):
        chaos = ChaosSchedule(seed=CHAOS_SEED, kinds=("frame_drop",), p=1.0,
                              max_trials=1)
        service, _ = _service(tmp_path, "drop")
        sweep, stats, _ = _chaos_sweep(service, chaos)
        _assert_matches(reference, sweep)
        # Attempt 0 computed everything, dropped every frame; the retried
        # attempt streamed it all from the store without recomputing.
        assert stats["frames_dropped"] >= len(_specs())
        assert stats["attempt"] >= 1
        assert stats["retries"] >= 1
        assert stats["computed_cells"] == 0
        assert stats["redundant_cells"] == 0

    def test_frame_corrupt_retries_to_completion(
        self, shared_cache, tmp_path, reference
    ):
        chaos = ChaosSchedule(seed=CHAOS_SEED, kinds=("frame_corrupt",),
                              p=1.0, max_trials=1)
        service, _ = _service(tmp_path, "corrupt")
        sweep, stats, _ = _chaos_sweep(service, chaos)
        _assert_matches(reference, sweep)
        assert stats["frames_corrupted"] >= 1  # CRC caught it client-side
        assert stats["attempt"] >= 1
        assert stats["retries"] >= 1
        assert stats["redundant_cells"] == 0

    def test_frame_delay_trips_request_deadline_then_recovers(
        self, shared_cache, tmp_path, reference
    ):
        service, _ = _service(tmp_path, "delay")
        # Pre-warm the store so every retried attempt is store-served.
        clean_sweep, _, _ = _chaos_sweep(service, None)
        _assert_matches(reference, clean_sweep)
        chaos = ChaosSchedule(seed=CHAOS_SEED, kinds=("frame_delay",),
                              p=1.0, max_trials=1, delay=1.5)
        service2 = CampaignService(store=ResultStore(
            root=tmp_path / "delay" / "store"), workers=2)
        sweep, stats, _ = _chaos_sweep(
            service2, chaos,
            client_options={"request_timeout": 0.75, "retries": 4,
                            "backoff": 0.1},
        )
        _assert_matches(reference, sweep)
        assert stats["frames_delayed"] >= 1
        assert stats["attempt"] >= 1  # at least one deadline trip
        assert stats["retries"] >= 1
        assert stats["computed_cells"] == 0  # all store-served on retry


class TestComposedChaos:
    def test_composed_schedule_completes_bit_identical(
        self, shared_cache, tmp_path, reference
    ):
        chaos = ChaosSchedule(
            seed=CHAOS_SEED, kinds=EVENT_KINDS, p=0.3, max_trials=2,
            delay=0.3,
        )
        service, _ = _service(
            tmp_path, "composed", unit_deadline=3.0, max_respawns=3,
        )
        sweep, stats, _ = _chaos_sweep(
            service, chaos,
            client_options={"request_timeout": 8.0, "retries": 6,
                            "backoff": 0.05},
        )
        _assert_matches(reference, sweep)
        assert stats["attempt"] <= 6  # bounded retries
        assert stats["redundant_cells"] == 0


class TestCleanRunCounters:
    def test_clean_run_has_all_recovery_counters_zero(
        self, shared_cache, tmp_path, reference
    ):
        service, _ = _service(tmp_path, "clean")
        sweep, stats, daemon_stats = _chaos_sweep(service, None)
        _assert_matches(reference, sweep)
        for key in RECOVERY_KEYS:
            assert stats[key] == 0, key
        assert daemon_stats["conn_errors"] == 0
        assert daemon_stats["retried_requests"] == 0
        assert all(v == 0 for v in daemon_stats["recovery"].values())


class TestConnErrors:
    def test_mid_frame_disconnect_is_counted(self, shared_cache, tmp_path):
        service, _ = _service(tmp_path, "connerr")
        with service:
            # A peer that dies mid-frame: valid header, missing payload.
            raw = socket.create_connection(service.address, timeout=5)
            raw.sendall(struct.pack(">QI", 100, 0) + b"torn")
            raw.close()
            with ServiceClient(service.address) as client:
                deadline_stats = _poll_conn_errors(client, minimum=1)
            assert deadline_stats["conn_errors"] >= 1

    def test_corrupt_request_frame_is_counted(self, shared_cache, tmp_path):
        from repro.serve.protocol import send_message

        service, _ = _service(tmp_path, "connerr2")
        with service:
            raw = socket.create_connection(service.address, timeout=5)
            send_message(raw, {"op": "ping"}, corrupt=True)
            raw.close()
            with ServiceClient(service.address) as client:
                deadline_stats = _poll_conn_errors(client, minimum=1)
            assert deadline_stats["conn_errors"] >= 1

    def test_orderly_close_is_not_an_error(self, shared_cache, tmp_path):
        service, _ = _service(tmp_path, "connok")
        with service:
            with ServiceClient(service.address) as client:
                assert client.ping()["pong"]
            # Context exit closed the socket cleanly, between frames.
            with ServiceClient(service.address) as client:
                stats = _poll_conn_errors(client, minimum=0)
            assert stats["conn_errors"] == 0


def _poll_conn_errors(client, minimum, timeout=5.0):
    """Poll daemon stats until ``conn_errors`` reaches ``minimum``.

    The error is counted on the daemon's connection thread, which may
    not have observed the broken socket yet when the stats request
    lands.
    """
    import time

    deadline = time.monotonic() + timeout
    stats = client.stats()
    while stats["conn_errors"] < minimum and time.monotonic() < deadline:
        time.sleep(0.05)
        stats = client.stats()
    return stats
