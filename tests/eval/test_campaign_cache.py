"""Tests for the campaign-result cache and cached/resumed sweeps."""

import numpy as np
import pytest

from repro.eval import (
    build_task,
    campaign_key,
    clear_memory_cache,
    load_campaign_values,
    result_store,
    run_robustness_sweep,
    store_campaign_values,
)
from repro.faults import FaultSpec, bitflip_sweep
from repro.models import proposed


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_memory_cache()
    yield tmp_path
    clear_memory_cache()


class TestCampaignValueCache:
    def _key(self, **overrides):
        task = build_task("audio", preset="tiny")
        defaults = dict(
            task=task,
            method=proposed(),
            spec=FaultSpec(kind="bitflip", level=0.1),
            n_runs=4,
            samples=2,
            seed=0,
            max_eval_samples=None,
        )
        defaults.update(overrides)
        return campaign_key(**defaults)

    def test_round_trip(self, isolated_cache):
        key = self._key()
        assert load_campaign_values(key) is None
        values = np.array([0.25, 0.5, 0.75, 1.0])
        store_campaign_values(key, values)
        np.testing.assert_array_equal(load_campaign_values(key), values)
        # Survives dropping the in-memory layer (disk hit).
        clear_memory_cache()
        np.testing.assert_array_equal(load_campaign_values(key), values)

    def test_loaded_values_are_copies(self, isolated_cache):
        key = self._key()
        store_campaign_values(key, np.array([1.0, 2.0]))
        loaded = load_campaign_values(key)
        loaded[0] = -99.0
        assert load_campaign_values(key)[0] == 1.0

    def test_key_distinguishes_every_campaign_knob(self, isolated_cache):
        base = self._key()
        assert self._key(n_runs=8) != base
        assert self._key(seed=1) != base
        assert self._key(samples=4) != base
        assert self._key(max_eval_samples=50) != base
        assert self._key(spec=FaultSpec(kind="bitflip", level=0.2)) != base
        assert self._key(spec=FaultSpec(kind="additive", level=0.1)) != base
        assert self._key(method=proposed(p=0.5)) != base

    def test_corrupt_disk_entry_is_a_miss(self, isolated_cache):
        key = self._key()
        store_campaign_values(key, np.array([1.0]))
        clear_memory_cache()
        path = result_store().address(key)
        path.write_bytes(b"not a numpy file")
        assert load_campaign_values(key) is None
        assert not path.exists()  # corrupt entry evicted

    def test_legacy_campaign_layout_is_promoted(self, isolated_cache):
        """Pre-store ``campaigns/<key>.npy`` entries keep serving."""
        key = self._key()
        legacy = isolated_cache / "campaigns"
        legacy.mkdir()
        np.save(legacy / f"{key}.npy", np.array([2.5]))
        clear_memory_cache()
        values = load_campaign_values(key)
        assert values is not None and values[0] == 2.5
        # ... and the hit landed in the content-addressed store.
        assert result_store().address(key).exists()


class TestSweepCaching:
    def _sweep(self, cell_log, use_cache=True, n_runs=2):
        task = build_task("audio", preset="tiny")
        return run_robustness_sweep(
            task,
            [proposed()],
            bitflip_sweep([0.0, 0.2]),
            preset="tiny",
            n_runs=n_runs,
            samples=2,
            use_cache=use_cache,
            on_cell_done=lambda done, total: cell_log.append(done),
        )

    def test_second_run_is_served_from_cache(self, isolated_cache):
        first_cells, second_cells = [], []
        first = self._sweep(first_cells)
        second = self._sweep(second_cells)
        assert first_cells  # fresh run simulated cells
        assert second_cells == []  # cached run simulated none
        np.testing.assert_array_equal(
            first.curves["proposed"].means, second.curves["proposed"].means
        )
        np.testing.assert_array_equal(
            first.curves["proposed"].stds, second.curves["proposed"].stds
        )

    def test_cache_survives_process_memory_loss(self, isolated_cache):
        first_cells, second_cells = [], []
        first = self._sweep(first_cells)
        clear_memory_cache()  # simulate a fresh process (disk cache kept)
        second = self._sweep(second_cells)
        assert second_cells == []
        np.testing.assert_array_equal(
            first.curves["proposed"].means, second.curves["proposed"].means
        )

    def test_no_cache_recomputes_identical_values(self, isolated_cache):
        first_cells, forced_cells = [], []
        first = self._sweep(first_cells)
        forced = self._sweep(forced_cells, use_cache=False)
        assert forced_cells  # bypassed the cache
        np.testing.assert_array_equal(
            first.curves["proposed"].means, forced.curves["proposed"].means
        )

    def test_changing_n_runs_invalidates(self, isolated_cache):
        first_cells, second_cells = [], []
        self._sweep(first_cells, n_runs=2)
        self._sweep(second_cells, n_runs=3)
        assert second_cells  # different grid shape -> cache miss


class TestSweepBackendEquivalence:
    """run_robustness_sweep must be bit-identical on every backend.

    This is the sweep-level determinism guarantee: TaskEvalHandle rebuilds
    (model, evaluator) in workers, and thread workers must get de-aliased
    model replicas even though the in-process trained-model cache returns
    one shared object.  The co2 task exercises the QuantLSTMCell replica
    path (frozen dropout masks, two fault hooks per cell).
    """

    @pytest.mark.parametrize("task_name", ["audio", "co2"])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_sweep_matches_serial(self, task_name, executor,
                                           isolated_cache):
        def sweep_with(backend):
            clear_memory_cache()
            task = build_task(task_name, preset="tiny")
            return run_robustness_sweep(
                task,
                [proposed()],
                bitflip_sweep([0.0, 0.1, 0.2]),
                preset="tiny",
                n_runs=3,
                samples=2,
                executor=backend,
                workers=4,
                use_cache=False,
            )

        serial = sweep_with("serial")
        parallel = sweep_with(executor)
        np.testing.assert_array_equal(
            serial.curves["proposed"].means, parallel.curves["proposed"].means
        )
        np.testing.assert_array_equal(
            serial.curves["proposed"].stds, parallel.curves["proposed"].stds
        )

    def test_campaign_seed_differs_from_task_seed(self, isolated_cache):
        # Regression: workers must rebuild the task with the seed the
        # driver's datasets were synthesized with (Task.seed), not the
        # campaign seed — otherwise process workers score a different
        # test set than the serial path.
        def sweep_with(backend):
            clear_memory_cache()
            task = build_task("audio", preset="tiny", seed=0)
            return run_robustness_sweep(
                task,
                [proposed()],
                bitflip_sweep([0.0, 0.2]),
                preset="tiny",
                seed=5,  # campaign/model seed != task seed
                n_runs=2,
                samples=2,
                executor=backend,
                workers=2,
                use_cache=False,
            )

        serial = sweep_with("serial")
        parallel = sweep_with("process")
        np.testing.assert_array_equal(
            serial.curves["proposed"].means, parallel.curves["proposed"].means
        )
