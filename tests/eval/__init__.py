"""Test package."""
