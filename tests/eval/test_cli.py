"""Tests for the command-line experiment runner."""

import pytest

from repro.eval.cli import build_parser, main


class TestParser:
    def test_table1_parses(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.preset == "small"

    def test_campaign_levels(self):
        args = build_parser().parse_args(
            ["campaign", "--task", "audio", "--fault", "additive",
             "--levels", "0", "0.1", "--runs", "3"]
        )
        assert args.levels == [0.0, 0.1]
        assert args.runs == 3

    def test_fig7_shift_choices(self):
        args = build_parser().parse_args(["fig7", "--shift", "uniform"])
        assert args.shift == "uniform"

    def test_invalid_task_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--task", "protein"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_opt_flag_tristate(self):
        parser = build_parser()
        assert parser.parse_args(["campaign", "--task", "co2"]).plan_opt is None
        assert parser.parse_args(
            ["campaign", "--task", "co2", "--plan-opt"]
        ).plan_opt is True
        assert parser.parse_args(
            ["campaign", "--task", "co2", "--no-plan-opt"]
        ).plan_opt is False

    def test_attach_amortize_flag_tristate(self):
        parser = build_parser()
        assert parser.parse_args(
            ["campaign", "--task", "co2"]
        ).attach_amortize is None
        assert parser.parse_args(
            ["campaign", "--task", "co2", "--attach-amortize"]
        ).attach_amortize is True
        assert parser.parse_args(
            ["campaign", "--task", "co2", "--no-attach-amortize"]
        ).attach_amortize is False

    def test_attach_amortize_with_globals_in_either_order(self):
        """--no-attach-amortize composes with globals before or after the
        subcommand (PR 2 allows both orders for --preset/--seed)."""
        parser = build_parser()
        before = parser.parse_args(
            ["--preset", "tiny", "--seed", "3",
             "campaign", "--task", "co2", "--no-attach-amortize"]
        )
        after = parser.parse_args(
            ["campaign", "--task", "co2",
             "--preset", "tiny", "--seed", "3", "--no-attach-amortize"]
        )
        assert before.attach_amortize is False and after.attach_amortize is False
        assert before.preset == after.preset == "tiny"
        assert before.seed == after.seed == 3


class TestExecution:
    def test_campaign_runs_tiny(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        main([
            "--preset", "tiny",
            "campaign", "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
        ])
        out = capsys.readouterr().out
        assert "audio / bitflip" in out
        assert "Proposed" in out

    @staticmethod
    def _profile_stage_labels(out: str) -> list:
        """Stage row labels of the --profile table printed in ``out``."""
        lines = out.split("per-stage wall time:", 1)[1].splitlines()
        labels = []
        for line in lines[1:]:
            if not line.startswith("  "):
                break
            label = line.strip().rsplit(None, 2)[0].rstrip("0123456789. ")
            labels.append(label.strip())
        return labels

    def test_profile_with_no_plan_degrades_gracefully(
        self, tmp_path, monkeypatch, capsys
    ):
        """--profile --no-plan: no trace/replay rows, no crash, no zeros.

        Global flags before the subcommand (PR 2 allows both orders).
        """
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        main([
            "--preset", "tiny",
            "campaign", "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
            "--profile", "--no-plan",
        ])
        out = capsys.readouterr().out
        assert "per-stage wall time:" in out
        labels = self._profile_stage_labels(out)
        assert "attach" in labels and "metric (other)" in labels
        assert "trace" not in labels and "replay" not in labels
        assert "plan optimizer:" not in out  # nothing traced, no counters

    def test_profile_with_no_plan_global_flags_after_subcommand(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        main([
            "campaign", "--preset", "tiny", "--seed", "0",
            "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
            "--profile", "--no-plan",
        ])
        out = capsys.readouterr().out
        labels = self._profile_stage_labels(out)
        assert "attach" in labels and "metric (other)" in labels
        assert "trace" not in labels and "replay" not in labels

    def test_profile_attributes_amortized_skips_to_program_stage(
        self, tmp_path, monkeypatch, capsys
    ):
        """With amortization on (default), registry work shows up as a
        dedicated ``program`` row — skipped cells never inflate ``attach``."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_ATTACH_AMORTIZE", raising=False)
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        main([
            "--preset", "tiny",
            "campaign", "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
            "--profile",
        ])
        out = capsys.readouterr().out
        labels = self._profile_stage_labels(out)
        assert "program" in labels and "attach" in labels

    def test_profile_without_amortization_has_no_program_stage(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        main([
            "--preset", "tiny",
            "campaign", "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
            "--profile", "--no-attach-amortize",
        ])
        out = capsys.readouterr().out
        labels = self._profile_stage_labels(out)
        assert "program" not in labels and "attach" in labels

    def test_profile_with_plan_reports_optimizer_counters(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache
        from repro.tensor import plan as plan_mod

        clear_memory_cache()
        plan_mod.clear_plans()
        main([
            "--preset", "tiny",
            "campaign", "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
            "--profile", "--plan", "--plan-opt",
        ])
        out = capsys.readouterr().out
        labels = self._profile_stage_labels(out)
        assert "trace" in labels and "replay" in labels
        assert "plan optimizer:" in out


class TestServiceFlags:
    def test_client_deadline_and_retry_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--task", "audio", "--connect", "127.0.0.1:9",
             "--connect-timeout", "1.5", "--request-timeout", "30",
             "--retries", "4", "--fallback-local"]
        )
        assert args.connect_timeout == 1.5
        assert args.request_timeout == 30.0
        assert args.retries == 4
        assert args.fallback_local is True

    def test_client_flag_defaults(self):
        args = build_parser().parse_args(["campaign", "--task", "audio"])
        assert args.connect_timeout == 5.0
        assert args.request_timeout == 600.0
        assert args.retries == 2
        assert args.fallback_local is False

    def test_fallback_local_degrades_to_in_process(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        main([
            "--preset", "tiny",
            "campaign", "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
            "--connect", f"127.0.0.1:{dead_port}",
            "--retries", "0", "--connect-timeout", "0.5",
            "--fallback-local",
        ])
        out = capsys.readouterr().out
        assert "falling back to the in-process engine" in out
        assert "audio / bitflip" in out  # the sweep still ran

    def test_unreachable_service_without_fallback_raises(self, monkeypatch):
        import socket

        from repro.serve import ServiceUnavailable

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with pytest.raises(ServiceUnavailable):
            main([
                "--preset", "tiny",
                "campaign", "--task", "audio",
                "--levels", "0", "0.2", "--runs", "2",
                "--connect", f"127.0.0.1:{dead_port}",
                "--retries", "0", "--connect-timeout", "0.5",
            ])


class TestStoreGC:
    def test_store_gc_parses(self):
        args = build_parser().parse_args(["store-gc", "--max-entries", "100"])
        assert args.command == "store-gc"
        assert args.max_entries == 100
        assert build_parser().parse_args(["store-gc"]).max_entries is None

    def test_store_gc_reports_and_bounds_the_store(
        self, tmp_path, monkeypatch, capsys
    ):
        import numpy as np

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache
        from repro.eval.cache import result_store

        clear_memory_cache()
        store = result_store()
        for i in range(4):
            store.put(f"gc-test-{i}", np.arange(3, dtype=np.float64) + i)
        assert len(store) == 4
        main(["store-gc", "--max-entries", "2"])
        out = capsys.readouterr().out
        assert "0 stale entries retired" in out
        assert "2 evicted" in out
        assert "2 remaining" in out
        assert len(store) == 2

    def test_store_gc_without_cap_only_retires(
        self, tmp_path, monkeypatch, capsys
    ):
        import numpy as np

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache
        from repro.eval.cache import result_store

        clear_memory_cache()
        result_store().put("gc-keep", np.ones(2))
        main(["store-gc"])
        out = capsys.readouterr().out
        assert "0 evicted" in out
        assert "1 remaining" in out
