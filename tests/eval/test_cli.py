"""Tests for the command-line experiment runner."""

import pytest

from repro.eval.cli import build_parser, main


class TestParser:
    def test_table1_parses(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.preset == "small"

    def test_campaign_levels(self):
        args = build_parser().parse_args(
            ["campaign", "--task", "audio", "--fault", "additive",
             "--levels", "0", "0.1", "--runs", "3"]
        )
        assert args.levels == [0.0, 0.1]
        assert args.runs == 3

    def test_fig7_shift_choices(self):
        args = build_parser().parse_args(["fig7", "--shift", "uniform"])
        assert args.shift == "uniform"

    def test_invalid_task_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--task", "protein"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_campaign_runs_tiny(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        main([
            "--preset", "tiny",
            "campaign", "--task", "audio", "--fault", "bitflip",
            "--levels", "0", "0.2", "--runs", "2",
        ])
        out = capsys.readouterr().out
        assert "audio / bitflip" in out
        assert "Proposed" in out
