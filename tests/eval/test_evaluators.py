"""Regression tests for the vectorized segmentation evaluator.

``segmentation_miou`` scores every image of a batch — and, under an
active chip batch, every (chip, image) pair — with ONE
``binary_miou_stack`` call instead of a per-image Python loop.  These
tests pin bit-identity against a literal transcription of the former
loop (per-image ``binary_miou`` / per-image ``binary_miou_stack``) on
both the serial and chip-batched shapes, including the Bayesian MC path.
"""

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.eval.evaluators import segmentation_miou
from repro.models import conventional, proposed
from repro.models.unet import UNet
from repro.tensor import Tensor, manual_seed, no_grad
from repro.tensor.chipbatch import chip_batch
from repro.tensor.random import scoped_rng
from repro.train.metrics import binary_miou, binary_miou_stack


def _loop_reference(model, test_set, method, mc_samples=3, batch_size=4):
    """Literal transcription of the pre-vectorization per-image loop."""
    from repro.core.bayesian import mc_forward

    per_image = []
    for start in range(0, len(test_set), batch_size):
        x, y = test_set[np.s_[start : start + batch_size]]
        from repro.eval.evaluators import _as_input

        xt = _as_input(x)
        if method.is_bayesian:
            logits = mc_forward(model, xt, mc_samples).mean(axis=0)
        else:
            model.eval()
            with no_grad():
                logits = model(xt).data
        pred_mask = logits > 0.0
        batched = pred_mask.ndim == y.ndim + 1
        for i in range(len(y)):
            if batched:
                per_image.append(binary_miou_stack(pred_mask[:, i], y[i] > 0.5))
            else:
                per_image.append(binary_miou(pred_mask[i], y[i] > 0.5))
    if per_image and isinstance(per_image[0], np.ndarray):
        stacked = np.stack(per_image, axis=0)
        return np.array(
            [float(np.mean(stacked[:, chip])) for chip in range(stacked.shape[1])]
        )
    return float(np.mean(per_image))


def _setup(method, n_images=5, size=8, seed=0):
    manual_seed(seed)
    model = UNet(method, base_width=8, depth=1)
    model.eval()
    rng = np.random.default_rng(seed + 1)
    images = rng.normal(size=(n_images, 1, size, size))
    masks = (rng.random((n_images, size, size)) > 0.5).astype(np.float64)
    return model, ArrayDataset(images, masks)


class TestSegmentationMiouVectorized:
    def test_serial_conventional_matches_loop(self):
        method = conventional(conventional_norm="group")
        model, test_set = _setup(method)
        with scoped_rng(np.random.default_rng(3)):
            vectorized = segmentation_miou(model, test_set, method, batch_size=2)
        with scoped_rng(np.random.default_rng(3)):
            looped = _loop_reference(model, test_set, method, batch_size=2)
        assert isinstance(vectorized, float)
        np.testing.assert_array_equal(vectorized, looped)

    def test_serial_bayesian_matches_loop(self):
        method = proposed()
        model, test_set = _setup(method)
        with scoped_rng(np.random.default_rng(5)):
            vectorized = segmentation_miou(
                model, test_set, method, mc_samples=3, batch_size=2
            )
        with scoped_rng(np.random.default_rng(5)):
            looped = _loop_reference(
                model, test_set, method, mc_samples=3, batch_size=2
            )
        np.testing.assert_array_equal(vectorized, looped)

    def test_chip_batched_matches_loop(self):
        method = proposed()
        model, test_set = _setup(method)
        with chip_batch(3), scoped_rng(np.random.default_rng(7)):
            # Per-chip streams are irrelevant here: the model has no fault
            # hooks, so all chips see identical activations — what matters
            # is the (chips, images) reduction order, pinned below.
            from repro.tensor.chipbatch import ChipBatchRng

            rngs = [np.random.default_rng(i) for i in range(3)]
            with scoped_rng(ChipBatchRng(rngs)):
                vectorized = segmentation_miou(
                    model, test_set, method, mc_samples=2, batch_size=2
                )
        with chip_batch(3):
            rngs = [np.random.default_rng(i) for i in range(3)]
            from repro.tensor.chipbatch import ChipBatchRng

            with scoped_rng(ChipBatchRng(rngs)):
                looped = _loop_reference(
                    model, test_set, method, mc_samples=2, batch_size=2
                )
        assert isinstance(vectorized, np.ndarray) and vectorized.shape == (3,)
        np.testing.assert_array_equal(vectorized, looped)

    def test_single_image_batches(self):
        method = conventional(conventional_norm="group")
        model, test_set = _setup(method, n_images=3)
        with scoped_rng(np.random.default_rng(1)):
            vectorized = segmentation_miou(model, test_set, method, batch_size=1)
        with scoped_rng(np.random.default_rng(1)):
            looped = _loop_reference(model, test_set, method, batch_size=1)
        np.testing.assert_array_equal(vectorized, looped)
