"""Tests for the experiment harness (tasks, evaluators, cache, reporting)."""

import numpy as np
import pytest

from repro.eval import (
    METHOD_LABELS,
    activation_shift_experiment,
    baseline_metrics,
    build_task,
    capture_weighted_sums,
    clear_memory_cache,
    format_sweep,
    format_table_row,
    mc_runs,
    mc_samples,
    run_robustness_sweep,
    table_header,
    trained_model,
)
from repro.eval.tasks import active_preset
from repro.faults import bitflip_sweep
from repro.models import conventional, proposed
from repro.tensor import Tensor, manual_seed


class TestTaskRegistry:
    @pytest.mark.parametrize("name", ["image", "audio", "co2", "vessels"])
    def test_tiny_tasks_build_and_train(self, name):
        task = build_task(name, preset="tiny")
        model = task.train_model(proposed(), seed=0)
        assert model.num_parameters() > 0

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            build_task("protein-folding")

    def test_build_model_deterministic(self):
        task = build_task("audio", preset="tiny")
        m1 = task.build_model(proposed(), seed=3)
        m2 = task.build_model(proposed(), seed=3)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_presets_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRESET", "enormous")
        with pytest.raises(ValueError):
            active_preset()

    def test_repro_full_selects_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert active_preset() == "paper"

    def test_mc_settings_scale_with_preset(self):
        assert mc_runs("tiny") < mc_runs("small") < mc_runs("paper") == 100
        assert mc_samples("tiny") <= mc_samples("small") < mc_samples("paper")


class TestModelCache:
    def test_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        task = build_task("audio", preset="tiny")
        m1 = trained_model(task, proposed(), "tiny", seed=0)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        # Second call: in-memory hit returns the same object.
        assert trained_model(task, proposed(), "tiny", seed=0) is m1
        # After clearing memory, the disk checkpoint is used (same weights).
        clear_memory_cache()
        m2 = trained_model(task, proposed(), "tiny", seed=0)
        assert m2 is not m1
        np.testing.assert_array_equal(
            m1.state_dict()["classifier.weight"], m2.state_dict()["classifier.weight"]
        )

    def test_different_methods_cached_separately(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        task = build_task("audio", preset="tiny")
        trained_model(task, proposed(), "tiny")
        trained_model(task, conventional(), "tiny")
        assert len(list(tmp_path.glob("*.npz"))) == 2


class TestSweepAndMetrics:
    def test_robustness_sweep_structure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        task = build_task("audio", preset="tiny")
        methods = [conventional(), proposed()]
        sweep = run_robustness_sweep(
            task,
            methods,
            bitflip_sweep([0.0, 0.2]),
            preset="tiny",
            n_runs=2,
            samples=2,
        )
        assert set(sweep.curves) == {"conventional", "proposed"}
        curve = sweep.curves["proposed"]
        assert curve.levels.tolist() == [0.0, 0.2]
        assert len(curve.means) == 2
        assert curve.clean == curve.means[0]
        assert np.isfinite(sweep.improvement_over("conventional")).all()

    def test_baseline_metrics_keys(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        task = build_task("co2", preset="tiny")
        row = baseline_metrics(task, [conventional(), proposed()], preset="tiny")
        assert set(row) == {"conventional", "proposed"}
        assert all(v >= 0 for v in row.values())


class TestReporting:
    def test_table_row_formatting(self):
        row = format_table_row(
            "ResNet-18",
            "synthetic-images",
            "acc",
            "1/1",
            {"conventional": 0.9, "proposed": 0.95},
        )
        assert "ResNet-18" in row and "0.9500" in row and "-" in row

    def test_table_header_mentions_methods(self):
        header = table_header()
        for label in ("NN", "SpinDrop", "SpatialSpinDrop", "Proposed"):
            assert label in header

    def test_method_labels_cover_all(self):
        from repro.models import METHOD_NAMES

        assert set(METHOD_NAMES) <= set(METHOD_LABELS)

    def test_format_sweep_renders(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        task = build_task("audio", preset="tiny")
        sweep = run_robustness_sweep(
            task,
            [proposed()],
            bitflip_sweep([0.0, 0.1]),
            preset="tiny",
            n_runs=2,
            samples=2,
        )
        text = format_sweep(sweep)
        assert "audio" in text and "0.1" in text


class TestProgressMeter:
    def _meter(self):
        import io

        from repro.eval import ProgressMeter

        stream = io.StringIO()
        return ProgressMeter(label="bench", stream=stream, min_interval=0.0), stream

    def test_tracks_throughput_and_eta(self):
        meter, stream = self._meter()
        meter(1, 4)
        meter(4, 4)
        out = stream.getvalue()
        assert "bench: 4/4 cells" in out
        assert "cells/s" in out and "ETA" in out

    def test_accumulates_across_method_grids(self):
        meter, stream = self._meter()
        for done in (1, 2, 3):  # first method's grid
            meter(done, 3)
        for done in (1, 2):  # next method starts a fresh grid
            meter(done, 2)
        assert meter.done == 5 and meter.total == 5
        summary = meter.finish()
        assert "5 cells" in summary
        assert stream.getvalue().endswith("\n")


class TestActivationCapture:
    def test_capture_weighted_sums(self, rng):
        manual_seed(0)
        task = build_task("audio", preset="tiny")
        model = task.build_model(proposed())
        x = Tensor(task.test_set.inputs[:4])
        values = capture_weighted_sums(model, x, layer_index=0)
        assert values.ndim == 1 and values.size > 0

    def test_capture_requires_quant_layers(self, rng):
        from repro import nn

        model = nn.Sequential(nn.Linear(4, 2))
        with pytest.raises(ValueError):
            capture_weighted_sums(model, Tensor(rng.normal(size=(2, 4))))

    def test_activation_shift_experiment(self, rng):
        manual_seed(0)
        task = build_task("audio", preset="tiny")
        model = task.train_model(proposed())
        x = Tensor(task.test_set.inputs[:8])
        results = activation_shift_experiment(
            model, x, flip_rates=(0.0, 0.2), layer_index=1, bins=20
        )
        assert set(results) == {0.0, 0.2}
        clean, faulty = results[0.0], results[0.2]
        assert clean.label == "Fault-Free"
        assert faulty.label == "20% Bit Flips"
        # Faults widen the weighted-sum distribution (Fig. 1's message).
        assert faulty.std != clean.std
        assert clean.histogram.sum() == faulty.histogram.sum()
        assert np.isclose(
            (clean.density * np.diff(clean.bin_edges)).sum(), 1.0
        )
