"""Content-addressed result-store tests: addressing, atomicity, recovery,
eviction, contract retirement, and cross-session merge."""

import os

import numpy as np
import pytest

from repro.eval.cache import RNG_CONTRACT, ResultStore, content_hash


KEY = "task=audio|method=proposed|kind=bitflip|level=0.1|runs=3|demo"
OTHER = "task=audio|method=proposed|kind=bitflip|level=0.2|runs=3|demo"


@pytest.fixture
def store(tmp_path):
    return ResultStore(root=tmp_path / "store")


class TestAddressing:
    def test_address_is_content_derived(self, store):
        digest = content_hash(KEY)
        address = store.address(KEY)
        assert address.name == f"{digest}.npz"
        assert address.parent.name == digest[:2]

    def test_round_trip(self, store):
        values = np.array([0.5, 0.25, 0.125])
        assert store.put(KEY, values)
        store.clear_memory()
        np.testing.assert_array_equal(store.get(KEY), values)

    def test_distinct_keys_distinct_addresses(self, store):
        assert store.address(KEY) != store.address(OTHER)

    def test_miss_returns_none(self, store):
        assert store.get(KEY) is None
        assert store.misses == 1


class TestCounters:
    def test_hit_miss_put_accounting(self, store):
        store.get(KEY)
        store.put(KEY, np.array([1.0]))
        store.clear_memory()
        store.get(KEY)
        snap = store.snapshot()
        assert snap["misses"] == 1
        assert snap["puts"] == 1
        assert snap["hits"] == 1

    def test_snapshot_is_a_copy(self, store):
        snap = store.snapshot()
        snap["hits"] = 99
        assert store.hits == 0


class TestAtomicity:
    def test_no_partial_files_left_behind(self, store):
        for i in range(8):
            store.put(f"{KEY}|{i}", np.arange(3, dtype=np.float64))
        leftovers = [
            p for p in store.root.rglob("*") if p.is_file()
            and not p.name.endswith(".npz")
        ]
        assert leftovers == []
        assert len(store) == 8

    def test_duplicate_put_is_a_merge(self, store):
        values = np.array([1.0, 2.0])
        assert store.put(KEY, values) is True
        payload = store.address(KEY).read_bytes()
        store.clear_memory()
        assert store.put(KEY, values.copy()) is False
        assert store.merges == 1
        # Merge never rewrites the entry (mtime may refresh for LRU).
        assert store.address(KEY).read_bytes() == payload

    def test_conflicting_put_raises(self, store):
        store.put(KEY, np.array([1.0, 2.0]))
        store.clear_memory()
        with pytest.raises(RuntimeError, match="conflict"):
            store.put(KEY, np.array([1.0, 3.0]))


class TestRecovery:
    def test_truncated_entry_is_recovered_as_miss(self, store):
        store.put(KEY, np.array([1.0]))
        store.clear_memory()
        address = store.address(KEY)
        address.write_bytes(address.read_bytes()[:20])
        assert store.get(KEY) is None
        assert store.recovered == 1
        assert not address.exists()

    def test_garbage_entry_is_recovered_as_miss(self, store):
        address = store.address(KEY)
        address.parent.mkdir(parents=True)
        address.write_bytes(b"not a zip archive")
        assert store.get(KEY) is None
        assert store.recovered == 1

    def test_key_mismatch_is_treated_as_corruption(self, store):
        """An entry whose stored key differs from the probe key (hash
        collision or a tampered file moved to the wrong address) must not
        serve foreign values."""
        store.put(OTHER, np.array([9.0]))
        store.clear_memory()
        os.renames(store.address(OTHER), store.address(KEY))
        assert store.get(KEY) is None
        assert store.recovered == 1

    def test_recovery_allows_fresh_put(self, store):
        address = store.address(KEY)
        address.parent.mkdir(parents=True)
        address.write_bytes(b"junk")
        assert store.get(KEY) is None
        assert store.put(KEY, np.array([4.0]))
        store.clear_memory()
        np.testing.assert_array_equal(store.get(KEY), [4.0])


class TestContract:
    def _write_with_contract(self, store, key, contract):
        store.put(key, np.array([1.0]))
        address = store.address(key)
        data = dict(np.load(address, allow_pickle=False))
        with open(address, "wb") as fh:
            np.savez(fh, key=np.asarray(key), contract=np.asarray(contract),
                     values=data["values"])
        store.clear_memory()

    def test_stale_contract_is_retired(self, store):
        self._write_with_contract(store, KEY, "mc1-legacy")
        assert store.get(KEY) is None
        assert store.retired == 1
        assert not store.address(KEY).exists()

    def test_retire_stale_sweeps_whole_store(self, store):
        self._write_with_contract(store, KEY, "mc1-legacy")
        store.put(OTHER, np.array([2.0]))
        assert store.retire_stale() == 1
        assert len(store) == 1
        assert store.get(OTHER) is not None

    def test_current_contract_survives(self, store):
        self._write_with_contract(store, KEY, RNG_CONTRACT)
        assert store.get(KEY) is not None


class TestEviction:
    def test_lru_eviction_keeps_recent(self, store, tmp_path):
        for i in range(6):
            store.put(f"{KEY}|{i}", np.array([float(i)]))
            os.utime(store.address(f"{KEY}|{i}"), ns=(i * 10**9, i * 10**9))
        assert store.evict(max_entries=2) == 4
        assert len(store) == 2
        store.clear_memory()
        np.testing.assert_array_equal(store.get(f"{KEY}|5"), [5.0])
        assert store.get(f"{KEY}|0") is None

    def test_bounded_store_evicts_on_put(self, tmp_path):
        store = ResultStore(root=tmp_path / "store", max_entries=3)
        for i in range(5):
            store.put(f"{KEY}|{i}", np.array([float(i)]))
        assert len(store) <= 3
        assert store.evicted >= 2

    def test_evict_noop_under_limit(self, store):
        store.put(KEY, np.array([1.0]))
        assert store.evict(max_entries=10) == 0


class TestCrossSession:
    def test_two_stores_same_root_merge(self, tmp_path):
        root = tmp_path / "store"
        a = ResultStore(root=root)
        b = ResultStore(root=root)
        a.put(KEY, np.array([1.0, 2.0]))
        # Session b computed the same campaign independently — identical
        # values by the RNG contract — and lands a merge, not a rewrite.
        assert b.put(KEY, np.array([1.0, 2.0])) is False
        assert b.merges == 1
        np.testing.assert_array_equal(b.get(KEY), [1.0, 2.0])

    def test_entries_visible_across_instances(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root=root).put(KEY, np.array([7.0]))
        np.testing.assert_array_equal(ResultStore(root=root).get(KEY), [7.0])


class TestLegacyPromotion:
    def test_legacy_npy_promoted_into_store(self, tmp_path):
        legacy = tmp_path / "campaigns"
        legacy.mkdir()
        np.save(legacy / f"{KEY}.npy", np.array([3.0, 4.0]))
        store = ResultStore(root=tmp_path / "store", legacy_dir=legacy)
        np.testing.assert_array_equal(store.get(KEY), [3.0, 4.0])
        assert store.address(KEY).exists()
        store.clear_memory()
        np.testing.assert_array_equal(store.get(KEY), [3.0, 4.0])
