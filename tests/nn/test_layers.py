"""Unit + gradient tests for linear, conv, pooling and activation layers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients


def t(rng, *shape, grad=False):
    return Tensor(rng.normal(size=shape), requires_grad=grad)


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(6, 4)
        assert layer(t(rng, 5, 6)).shape == (5, 4)

    def test_no_bias(self, rng):
        layer = nn.Linear(6, 4, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients(self, rng):
        layer = nn.Linear(4, 3)
        x = t(rng, 2, 4, grad=True)
        check_gradients(lambda: layer(x), [x] + layer.parameters())

    def test_batched_3d_input(self, rng):
        layer = nn.Linear(4, 3)
        assert layer(t(rng, 2, 5, 4)).shape == (2, 5, 3)


class TestConvLayers:
    def test_conv2d_shapes(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(t(rng, 2, 3, 8, 8)).shape == (2, 8, 4, 4)

    def test_conv2d_gradients(self, rng):
        layer = nn.Conv2d(2, 3, 3, padding=1)
        x = t(rng, 1, 2, 5, 5, grad=True)
        check_gradients(lambda: layer(x), [x] + layer.parameters())

    def test_conv1d_shapes(self, rng):
        layer = nn.Conv1d(1, 4, 9, stride=4, padding=4)
        assert layer(t(rng, 2, 1, 64)).shape == (2, 4, 16)

    def test_conv_transpose2d_shapes(self, rng):
        layer = nn.ConvTranspose2d(4, 2, 2, stride=2)
        assert layer(t(rng, 1, 4, 5, 5)).shape == (1, 2, 10, 10)

    def test_parameter_count(self):
        layer = nn.Conv2d(3, 8, 3)
        assert layer.num_parameters() == 8 * 3 * 9 + 8


class TestPoolingLayers:
    def test_max_pool2d(self, rng):
        assert nn.MaxPool2d(2)(t(rng, 1, 2, 8, 8)).shape == (1, 2, 4, 4)

    def test_avg_pool2d_stride(self, rng):
        assert nn.AvgPool2d(3, stride=2)(t(rng, 1, 2, 7, 7)).shape == (1, 2, 3, 3)

    def test_max_pool1d(self, rng):
        assert nn.MaxPool1d(4)(t(rng, 2, 3, 16)).shape == (2, 3, 4)

    def test_global_pools(self, rng):
        assert nn.GlobalAvgPool2d()(t(rng, 2, 5, 4, 4)).shape == (2, 5)
        assert nn.GlobalAvgPool1d()(t(rng, 2, 5, 9)).shape == (2, 5)

    def test_upsample(self, rng):
        assert nn.UpsampleNearest2d(2)(t(rng, 1, 2, 3, 3)).shape == (1, 2, 6, 6)

    def test_flatten(self, rng):
        assert nn.Flatten()(t(rng, 2, 3, 4)).shape == (2, 12)


class TestActivations:
    @pytest.mark.parametrize(
        "layer,fn",
        [
            (nn.ReLU(), lambda v: np.maximum(v, 0)),
            (nn.Tanh(), np.tanh),
            (nn.Sigmoid(), lambda v: 1 / (1 + np.exp(-v))),
            (nn.HardTanh(), lambda v: np.clip(v, -1, 1)),
        ],
        ids=["relu", "tanh", "sigmoid", "hardtanh"],
    )
    def test_matches_numpy(self, rng, layer, fn):
        x = t(rng, 4, 5)
        np.testing.assert_allclose(layer(x).data, fn(x.data), atol=1e-12)

    def test_leaky_relu_slope(self):
        layer = nn.LeakyReLU(0.2)
        out = layer(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [-0.2, 2.0])

    def test_softmax_normalizes(self, rng):
        out = nn.Softmax()(t(rng, 3, 7))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_log_softmax_consistency(self, rng):
        x = t(rng, 3, 7)
        np.testing.assert_allclose(
            nn.LogSoftmax()(x).data, np.log(nn.Softmax()(x).data), atol=1e-12
        )


class TestLSTMLayer:
    def test_output_shapes(self, rng):
        lstm = nn.LSTM(3, 8, num_layers=2)
        out, state = lstm(t(rng, 4, 6, 3))
        assert out.shape == (4, 6, 8)
        assert len(state) == 2
        assert state[0][0].shape == (4, 8)

    def test_state_continuation(self, rng):
        lstm = nn.LSTM(2, 4)
        x = t(rng, 1, 6, 2)
        full, _ = lstm(x)
        first, state = lstm(x[:, :3, :])
        second, _ = lstm(x[:, 3:, :], state=state)
        np.testing.assert_allclose(second.data, full.data[:, 3:, :], atol=1e-10)

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(2, 4)
        np.testing.assert_allclose(cell.bias_ih.data[4:8], np.ones(4))

    def test_cell_gradcheck(self, rng):
        cell = nn.LSTMCell(3, 4)
        x = t(rng, 2, 3, grad=True)
        h = t(rng, 2, 4, grad=True)
        c = t(rng, 2, 4, grad=True)
        check_gradients(
            lambda: cell(x, (h, c))[0] + cell(x, (h, c))[1],
            [x, h, c],
            atol=1e-4,
            rtol=1e-3,
        )
