"""Tests for dropout variants and the stochastic-module machinery."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients


class TestDropout:
    def test_drop_fraction_statistics(self, rng):
        d = nn.Dropout(0.4)
        out = d(Tensor(np.ones(20000)))
        assert abs((out.data == 0).mean() - 0.4) < 0.03

    def test_kept_values_rescaled(self, rng):
        d = nn.Dropout(0.5)
        out = d(Tensor(np.ones(1000)))
        kept = out.data[out.data != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_expectation_preserved(self, rng):
        d = nn.Dropout(0.3)
        outs = [d(Tensor(np.ones(2000))).data.mean() for _ in range(30)]
        assert abs(np.mean(outs) - 1.0) < 0.03

    def test_eval_is_identity(self):
        d = nn.Dropout(0.5)
        d.eval()
        x = Tensor(np.ones(10))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_stochastic_inference_reactivates(self):
        d = nn.Dropout(0.5)
        d.eval()
        d.stochastic_inference = True
        out = d(Tensor(np.ones(1000)))
        assert (out.data == 0).any()

    def test_p_zero_identity(self):
        d = nn.Dropout(0.0)
        x = Tensor(np.ones(10))
        assert d(x) is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_gradient_respects_mask(self, rng):
        d = nn.Dropout(0.5)
        x = Tensor(rng.normal(size=100), requires_grad=True)
        out = d(x)
        out.sum().backward()
        zeros = out.data == 0
        np.testing.assert_allclose(x.grad[zeros], 0.0)
        np.testing.assert_allclose(x.grad[~zeros], 2.0)

    def test_frozen_scope_reuses_mask(self):
        d = nn.Dropout(0.5)
        d.mask_scope = "frozen"
        x = Tensor(np.ones(500))
        a = d(x).data.copy()
        b = d(x).data.copy()
        np.testing.assert_array_equal(a, b)
        d.resample()
        c = d(x).data.copy()
        assert not np.array_equal(a, c)

    def test_frozen_scope_resamples_on_shape_change(self):
        d = nn.Dropout(0.5)
        d.mask_scope = "frozen"
        d(Tensor(np.ones(100)))
        out = d(Tensor(np.ones(50)))  # no stale-shape crash
        assert out.shape == (50,)


class TestSpatialDropout:
    def test_whole_channels_dropped(self, rng):
        d = nn.SpatialDropout2d(0.5)
        out = d(Tensor(np.ones((4, 32, 3, 3)))).data
        per_channel = out.reshape(4, 32, -1)
        for n in range(4):
            for c in range(32):
                vals = np.unique(per_channel[n, c])
                assert len(vals) == 1  # all-zero or all-scaled

    def test_drop_rate(self, rng):
        d = nn.SpatialDropout2d(0.3)
        out = d(Tensor(np.ones((8, 500, 2, 2)))).data
        dropped = (out.reshape(8, 500, -1)[:, :, 0] == 0).mean()
        assert abs(dropped - 0.3) < 0.05

    def test_1d_variant(self, rng):
        d = nn.SpatialDropout1d(0.5)
        out = d(Tensor(np.ones((2, 64, 10)))).data
        assert out.shape == (2, 64, 10)
        per_channel = out.reshape(2, 64, -1)
        assert ((per_channel == 0).all(axis=2) | (per_channel != 0).all(axis=2)).all()


class TestGaussianDropout:
    def test_multiplicative_noise_statistics(self):
        d = nn.GaussianDropout(0.5)
        out = d(Tensor(np.ones(50000))).data
        assert abs(out.mean() - 1.0) < 0.02
        assert abs(out.std() - 1.0) < 0.05  # std = sqrt(p/(1-p)) = 1

    def test_eval_identity(self):
        d = nn.GaussianDropout(0.5)
        d.eval()
        x = Tensor(np.ones(10))
        assert d(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.GaussianDropout(0.0)


class TestDropConnect:
    def test_wraps_linear(self, rng):
        inner = nn.Linear(6, 4)
        d = nn.DropConnect(inner, p=0.5)
        out = d(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 4)

    def test_eval_matches_inner(self, rng):
        inner = nn.Linear(6, 4)
        d = nn.DropConnect(inner, p=0.5)
        d.eval()
        x = Tensor(rng.normal(size=(3, 6)))
        np.testing.assert_allclose(d(x).data, inner(x).data)

    def test_gradients_flow_to_weights(self, rng):
        inner = nn.Linear(4, 2)
        d = nn.DropConnect(inner, p=0.3)
        out = d(Tensor(rng.normal(size=(3, 4))))
        out.sum().backward()
        assert inner.weight.grad is not None

    def test_requires_weight(self):
        with pytest.raises(TypeError):
            nn.DropConnect(nn.Identity(), p=0.5)


class TestMaskScopeHelpers:
    def test_set_mask_scope_recursive(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Sequential(nn.Dropout(0.3)))
        nn.set_mask_scope(model, "frozen")
        drops = [m for m in model.modules() if isinstance(m, nn.Dropout)]
        assert all(d.mask_scope == "frozen" for d in drops)

    def test_set_mask_scope_validates(self):
        with pytest.raises(ValueError):
            nn.set_mask_scope(nn.Dropout(0.5), "sometimes")

    def test_resample_masks_clears_caches(self):
        d = nn.Dropout(0.5)
        d.mask_scope = "frozen"
        x = Tensor(np.ones(200))
        a = d(x).data.copy()
        nn.resample_masks(d)
        b = d(x).data.copy()
        assert not np.array_equal(a, b)
