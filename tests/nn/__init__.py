"""Test package."""
