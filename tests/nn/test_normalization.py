"""Tests for conventional normalization layers (invariants + gradients)."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients


def t(rng, *shape, grad=False):
    return Tensor(rng.normal(loc=2.0, scale=3.0, size=shape), requires_grad=grad)


class TestBatchNorm2d:
    def test_train_output_standardized_per_channel(self, rng):
        bn = nn.BatchNorm2d(4)
        out = bn(t(rng, 8, 4, 5, 5)).data
        means = out.mean(axis=(0, 2, 3))
        stds = out.std(axis=(0, 2, 3))
        np.testing.assert_allclose(means, 0.0, atol=1e-10)
        np.testing.assert_allclose(stds, 1.0, atol=1e-3)

    def test_running_stats_converge(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.2)
        for _ in range(60):
            bn(t(rng, 16, 2, 4, 4))
        np.testing.assert_allclose(bn._buffers["running_mean"], 2.0, atol=0.3)
        np.testing.assert_allclose(bn._buffers["running_var"], 9.0, rtol=0.2)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn._buffers["running_mean"][:] = 2.0
        bn._buffers["running_var"][:] = 9.0
        bn.eval()
        x = t(rng, 4, 2, 3, 3)
        out = bn(x).data
        expected = (x.data - 2.0) / np.sqrt(9.0 + bn.eps)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_eval_is_deterministic(self, rng):
        bn = nn.BatchNorm2d(2)
        bn(t(rng, 8, 2, 3, 3))
        bn.eval()
        x = t(rng, 4, 2, 3, 3)
        np.testing.assert_array_equal(bn(x).data, bn(x).data)

    def test_gradients(self, rng):
        bn = nn.BatchNorm2d(3)
        x = t(rng, 4, 3, 3, 3, grad=True)
        check_gradients(lambda: bn(x), [x, bn.weight, bn.bias])

    def test_affine_false_has_no_params(self, rng):
        bn = nn.BatchNorm2d(3, affine=False)
        assert not bn.parameters()
        bn(t(rng, 4, 3, 2, 2))


class TestBatchNorm1d:
    def test_2d_input(self, rng):
        bn = nn.BatchNorm1d(5)
        out = bn(t(rng, 32, 5)).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)

    def test_3d_input(self, rng):
        bn = nn.BatchNorm1d(5)
        out = bn(t(rng, 8, 5, 7)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-10)


class TestLayerNorm:
    def test_per_instance_standardization(self, rng):
        ln = nn.LayerNorm(4)
        out = ln(t(rng, 6, 4, 3, 3)).data
        flat = out.reshape(6, -1)
        np.testing.assert_allclose(flat.mean(axis=1), 0.0, atol=1e-10)
        np.testing.assert_allclose(flat.std(axis=1), 1.0, atol=1e-3)

    def test_train_eval_identical(self, rng):
        ln = nn.LayerNorm(4)
        x = t(rng, 2, 4, 3, 3)
        train_out = ln(x).data.copy()
        ln.eval()
        np.testing.assert_array_equal(ln(x).data, train_out)

    def test_works_on_2d_input(self, rng):
        ln = nn.LayerNorm(8)
        out = ln(t(rng, 5, 8)).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-10)

    def test_gradients(self, rng):
        ln = nn.LayerNorm(3)
        x = t(rng, 2, 3, 4, grad=True)
        check_gradients(lambda: ln(x), [x, ln.weight, ln.bias])


class TestInstanceNorm2d:
    def test_per_channel_per_instance(self, rng):
        inorm = nn.InstanceNorm2d(3)
        out = inorm(t(rng, 4, 3, 5, 5)).data
        np.testing.assert_allclose(out.mean(axis=(2, 3)), 0.0, atol=1e-10)

    def test_gradients(self, rng):
        inorm = nn.InstanceNorm2d(2)
        x = t(rng, 2, 2, 4, 4, grad=True)
        check_gradients(lambda: inorm(x), [x, inorm.weight, inorm.bias])


class TestGroupNorm:
    def test_group_statistics(self, rng):
        gn = nn.GroupNorm(2, 4)
        out = gn(t(rng, 3, 4, 5, 5)).data
        grouped = out.reshape(3, 2, 2, 5, 5)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-10)

    def test_invalid_group_count_raises(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)

    def test_gradients(self, rng):
        gn = nn.GroupNorm(2, 4)
        x = t(rng, 2, 4, 3, 3, grad=True)
        check_gradients(lambda: gn(x), [x, gn.weight, gn.bias])

    def test_single_group_equals_layernorm_stats(self, rng):
        gn = nn.GroupNorm(1, 4)
        ln = nn.LayerNorm(4)
        x = t(rng, 2, 4, 3, 3)
        np.testing.assert_allclose(gn(x).data, ln(x).data, atol=1e-10)
