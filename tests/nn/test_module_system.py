"""Unit tests for the Module/Parameter registration system."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class Leaf(nn.Module):
    def __init__(self):
        super().__init__()
        self.weight = nn.Parameter(np.ones(3))
        self.register_buffer("stat", np.zeros(3))

    def forward(self, x):
        return x * self.weight


class Branch(nn.Module):
    def __init__(self):
        super().__init__()
        self.leaf_a = Leaf()
        self.leaf_b = Leaf()
        self.scale = nn.Parameter(np.array([2.0]))

    def forward(self, x):
        return self.leaf_b(self.leaf_a(x)) * self.scale


class TestRegistration:
    def test_parameters_are_registered(self):
        m = Branch()
        names = dict(m.named_parameters())
        assert set(names) == {"leaf_a.weight", "leaf_b.weight", "scale"}

    def test_num_parameters(self):
        assert Branch().num_parameters() == 7

    def test_buffers_are_recursive(self):
        m = Branch()
        assert set(dict(m.named_buffers())) == {"leaf_a.stat", "leaf_b.stat"}

    def test_named_modules(self):
        m = Branch()
        names = [name for name, _ in m.named_modules()]
        assert names == ["", "leaf_a", "leaf_b"]

    def test_children_only_direct(self):
        m = Branch()
        assert len(list(m.children())) == 2

    def test_reassigning_with_non_module_clears_registration(self):
        m = Branch()
        m.leaf_a = None
        assert "leaf_a" not in dict(m.named_modules())

    def test_getattr_raises_for_unknown(self):
        with pytest.raises(AttributeError):
            Branch().unknown_attribute

    def test_apply_visits_all(self):
        m = Branch()
        visited = []
        m.apply(lambda mod: visited.append(type(mod).__name__))
        assert visited.count("Leaf") == 2


class TestModes:
    def test_train_eval_propagates(self):
        m = Branch()
        m.eval()
        assert not m.leaf_a.training and not m.leaf_b.training
        m.train()
        assert m.leaf_a.training

    def test_zero_grad(self):
        m = Branch()
        out = m(Tensor(np.ones(3)))
        out.sum().backward()
        assert m.scale.grad is not None
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_round_trip(self):
        m1, m2 = Branch(), Branch()
        m1.scale.data[:] = 7.0
        m1.leaf_a._buffers["stat"][:] = 3.0
        m2.load_state_dict(m1.state_dict())
        assert m2.scale.data[0] == 7.0
        np.testing.assert_allclose(m2.leaf_a._buffers["stat"], 3.0)

    def test_state_dict_values_are_copies(self):
        m = Branch()
        sd = m.state_dict()
        sd["scale"][:] = 99.0
        assert m.scale.data[0] == 2.0

    def test_missing_key_raises(self):
        m = Branch()
        sd = m.state_dict()
        del sd["scale"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_unexpected_key_raises(self):
        m = Branch()
        sd = m.state_dict()
        sd["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_shape_mismatch_raises(self):
        m = Branch()
        sd = m.state_dict()
        sd["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_save_load_file(self, tmp_path):
        m1, m2 = Branch(), Branch()
        m1.scale.data[:] = 5.0
        path = str(tmp_path / "ckpt.npz")
        m1.save(path)
        m2.load(path)
        assert m2.scale.data[0] == 5.0


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Lambda(lambda x: x + 1.0), nn.Lambda(lambda x: x * 2.0))
        out = seq(Tensor(np.array([1.0])))
        np.testing.assert_allclose(out.data, [4.0])

    def test_sequential_indexing_and_len(self):
        seq = nn.Sequential(nn.Identity(), nn.Identity(), nn.Identity())
        assert len(seq) == 3
        assert isinstance(seq[1], nn.Identity)

    def test_sequential_append(self):
        seq = nn.Sequential(nn.Identity())
        seq.append(nn.Identity())
        assert len(seq) == 2

    def test_module_list_registers(self):
        ml = nn.ModuleList([Leaf(), Leaf()])
        assert len(list(ml.named_parameters())) == 2
        assert len(ml) == 2

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([])(None)

    def test_identity_passthrough(self):
        x = Tensor(np.arange(3.0))
        assert nn.Identity()(x) is x

    def test_repr_contains_children(self):
        text = repr(nn.Sequential(nn.Linear(2, 3)))
        assert "Linear" in text and "in_features=2" in text
