"""Test package."""
