"""Campaign-engine benchmark: plan-IR optimizer vs raw-trace replay (PR 5).

Runs the same Monte Carlo uniform-noise severity sweep as
``test_plan_speedup.py`` (tiny CO2/LSTM task, the tiny preset's native
``n_runs=3`` chips and ``mc_samples=4`` Bayesian passes, 8 severity
levels, evaluation capped at 64 windows) in two configurations of the
plan-routed scenario-batched ``batched`` executor:

* **baseline** — the PR 5 engine (``plan=True, plan_opt=False``): every
  timed sweep replays the *raw* traced step list;
* **optimized** — this PR's engine (``plan_opt=True``, the default): the
  traced step list first runs through the IR passes of
  ``repro.tensor.plan_passes`` — constant folding (frozen quantized
  weights and their transposes), dead-step elimination, and kernel
  fusion (the LSTM's per-timestep sigmoid/tanh/mul/add gate arithmetic
  collapses into composite kernels) — and every timed sweep replays the
  shorter list.

Timed sweeps are *interleaved* (raw, optimized, raw, optimized, ...)
rather than block-measured, so slow drift in machine state — CPU
frequency, page cache, competing load — hits both configurations
equally and the min-of-repeats ratio isolates the optimizer effect.
Measurement additionally runs in ``ROUNDS`` layout rounds: each round
drops both plan caches and re-traces behind a differently sized heap
ballast, resampling the buffer-pool addresses the allocator hands each
configuration.  Per-process allocation luck (cache-line conflicts
between pooled replay buffers) otherwise moves single-build ratios by
several percent; the min over rounds converges each configuration to
its own layout floor instead of comparing one lucky draw against one
unlucky one.

Per-(scenario, chip) values are asserted bit-identical, the optimizer
must cut the replay step count by ≥20% on this sweep, throughput for
both configurations is recorded to ``BENCH_pr6.json`` (schema v3; the
optimized row carries ``steps_before``/``steps_after``/
``step_reduction`` extras — see ``docs/benchmarks.md``), and the ≥1.1x
cells/s assertion is unconditional — pure step-count and allocation
savings, no parallel hardware involved.

Run explicitly (benchmarks are excluded from tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_plan_opt_speedup.py -s
"""

import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, uniform_sweep
from repro.models import proposed
from repro.tensor import plan as plan_mod

from conftest import print_banner
from recorder import bench_path, record_bench

N_RUNS = 3  # the tiny preset's native chip count (mc_runs("tiny"))
MC_SAMPLES = 4  # the tiny preset's native Bayesian pass count (mc_samples("tiny"))
MAX_EVAL_SAMPLES = 64  # large enough that replay arrays dwarf layout luck
LEVELS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4]
ROUNDS = 5  # re-trace rounds; each resamples the buffer-pool heap layout
REPEATS = 10  # interleaved timed sweeps per configuration per round
MIN_SPEEDUP = 1.1
MIN_STEP_REDUCTION = 0.20


def _build():
    task = build_task("co2", preset="tiny")
    method = proposed()
    model = trained_model(task, method, "tiny", seed=0)
    evaluator = make_evaluator(
        task.name,
        task.test_set,
        method,
        mc_samples=MC_SAMPLES,
        max_samples=MAX_EVAL_SAMPLES,
    )
    return model, evaluator


def _campaign(model, evaluator, plan_opt: bool) -> MonteCarloCampaign:
    return MonteCarloCampaign(
        model,
        evaluator,
        n_runs=N_RUNS,
        base_seed=0,
        executor="batched",
        scenario_batched=True,
        plan=True,
        plan_opt=plan_opt,
    )


def _step_counts(model) -> tuple:
    """Summed (steps_before, steps_after) over the model's cached plans."""
    before = after = 0
    for entry in plan_mod.plan_stats(model).plans.values():
        stats = getattr(entry, "opt_stats", None)
        if stats is not None:
            before += stats["steps_before"]
            after += stats["steps_after"]
    return before, after


@pytest.mark.paper_artifact("campaign-engine")
def test_plan_optimizer_sweep_speedup():
    print_banner(
        f"Campaign engine: raw-trace replay (PR5) vs optimized plan IR "
        f"(co2/LSTM, {len(LEVELS)} levels, n_runs={N_RUNS}, "
        f"mc_samples={MC_SAMPLES})"
    )
    specs = uniform_sweep(LEVELS)
    cells = len(LEVELS) * N_RUNS
    timings = {"plan-replay": float("inf"), "plan-opt": float("inf")}
    results = {}
    step_counts = {}

    def _prepare(label, plan_opt):
        # Fresh caches per build: deterministic retraining gives both
        # configurations bit-identical weights on distinct model objects
        # (distinct plan caches), so interleaved sweeps cannot interact.
        clear_memory_cache()
        model, evaluator = _build()
        return label, _campaign(model, evaluator, plan_opt), model

    # Baseline: the PR 5 engine — replays the raw traced step list.
    # This PR: fold/eliminate/fuse at trace time, replay the short list.
    plan_mod.clear_plans()
    prepared = [
        _prepare("plan-replay", plan_opt=False),
        _prepare("plan-opt", plan_opt=True),
    ]

    for rnd in range(ROUNDS):
        # Deterministically sized ballast shifts the heap before this
        # round's traces, so each round's buffer pools land at different
        # addresses (round 0 is the unshifted baseline layout).
        ballast = [bytes(4096 + 977 * rnd * k) for k in range(1, 40)]
        plan_mod.clear_plans()
        for label, campaign, model in prepared:
            campaign.sweep(specs)  # warmup: traces this round's plans
            step_counts[label] = _step_counts(model)
        del ballast
        for _ in range(REPEATS):
            for label, campaign, _model in prepared:
                start = time.perf_counter()
                results[label] = campaign.sweep(specs)
                timings[label] = min(
                    timings[label], time.perf_counter() - start
                )

    for label in ("plan-replay", "plan-opt"):
        print(
            f"{label:>12}: {timings[label] * 1000:7.1f}ms/sweep "
            f"({cells / timings[label]:7.1f} cells/s)"
        )

    for baseline_result, opt_result in zip(
        results["plan-replay"], results["plan-opt"]
    ):
        np.testing.assert_array_equal(baseline_result.values, opt_result.values)

    before, after = step_counts["plan-opt"]
    assert before > 0, "optimized campaign traced no plans"
    reduction = 1.0 - after / before
    print(
        f" replay steps: {before} -> {after} "
        f"({reduction:.1%} reduction, threshold {MIN_STEP_REDUCTION:.0%})"
    )

    speedup = timings["plan-replay"] / timings["plan-opt"]
    print(f" speedup: {speedup:.2f}x (threshold {MIN_SPEEDUP:.1f}x)")
    target = bench_path("pr6")
    record_bench(
        "co2", "plan-replay", cells / timings["plan-replay"], 1.0,
        bench_file=target,
    )
    record_bench(
        "co2", "plan-opt", cells / timings["plan-opt"], speedup,
        bench_file=target,
        extra={
            "steps_before": int(before),
            "steps_after": int(after),
            "step_reduction": round(reduction, 3),
        },
    )
    assert reduction >= MIN_STEP_REDUCTION, (
        f"expected the optimizer to drop >={MIN_STEP_REDUCTION:.0%} of replay "
        f"steps on the tiny LSTM severity sweep, got {reduction:.1%} "
        f"({before} -> {after})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected optimized plan replay to be >={MIN_SPEEDUP}x faster than "
        f"raw-trace replay on the tiny LSTM severity sweep, got {speedup:.2f}x"
    )
