"""Campaign-engine benchmark: parallel backends vs the serial reference.

Runs one Monte Carlo bit-flip campaign (tiny audio task, ``n_runs=32``)
on the serial and process backends, asserts the values are bit-identical,
and reports wall-clock throughput for each.  The ≥2× speedup assertion is
made only on machines that actually have ≥4 usable cores — on a 1-core
container a process pool cannot beat a serial loop, and pretending
otherwise would just make the benchmark flaky.

Run explicitly (benchmarks are excluded from tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_parallel_speedup.py -s
"""

import os
import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, bitflip_sweep
from repro.eval.campaigns import TaskEvalHandle

from conftest import print_banner
from recorder import record_bench

N_RUNS = 32
WORKERS = 4
LEVELS = [0.0, 0.05, 0.1]


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _campaign(executor: str):
    task = build_task("audio", preset="tiny")
    method_samples = 4
    from repro.models import proposed

    method = proposed()
    model = trained_model(task, method, "tiny", seed=0)
    evaluator = make_evaluator(task.name, task.test_set, method,
                               mc_samples=method_samples)
    handle = TaskEvalHandle("audio", "tiny", 0, method, method_samples, None,
                            task.seed)
    return MonteCarloCampaign(
        model, evaluator, n_runs=N_RUNS, base_seed=0,
        executor=executor, workers=WORKERS, handle=handle,
        # Pin PR 5's plan axis off: this benchmark isolates pool scaling.
        plan=False,
    )


@pytest.mark.paper_artifact("campaign-engine")
def test_parallel_campaign_speedup():
    print_banner(
        f"Campaign engine: serial vs process x{WORKERS} "
        f"(n_runs={N_RUNS}, {_usable_cpus()} usable CPUs)"
    )
    specs = bitflip_sweep(LEVELS)
    timings = {}
    results = {}
    for executor in ("serial", "process"):
        clear_memory_cache()
        campaign = _campaign(executor)
        start = time.perf_counter()
        results[executor] = campaign.sweep(specs)
        timings[executor] = time.perf_counter() - start
        cells = 1 + (len(LEVELS) - 1) * N_RUNS
        print(f"{executor:>8}: {timings[executor]:6.2f}s "
              f"({cells / timings[executor]:6.2f} cells/s)")

    for serial_result, process_result in zip(results["serial"], results["process"]):
        np.testing.assert_array_equal(serial_result.values, process_result.values)
    speedup = timings["serial"] / timings["process"]
    print(f" speedup: {speedup:.2f}x")
    cells = 1 + (len(LEVELS) - 1) * N_RUNS
    record_bench("image", "serial", cells / timings["serial"], 1.0)
    record_bench("image", "process", cells / timings["process"], speedup)
    if _usable_cpus() >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {WORKERS} workers on "
            f"{_usable_cpus()} CPUs, got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"only {_usable_cpus()} usable CPU(s): determinism verified, "
            f"speedup assertion needs >= {WORKERS} cores "
            f"(measured {speedup:.2f}x)"
        )
