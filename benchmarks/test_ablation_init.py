"""Section IV-F: impact of affine-parameter initialization.

Paper reference: sigma_gamma = sigma_beta = 0.3 is the operating point;
"initializing with larger sigma can improve robustness to variations and
bit-flip faults, as it introduces more randomness to the weighted sum.
However, it can reduce the accuracy of baseline by 1-2%."

Shape claims:

* all sigma settings train to a usable clean accuracy,
* the largest sigma's clean accuracy does not exceed the smallest sigma's
  by a meaningful margin (more init randomness never helps clean accuracy),
* robustness at the strongest fault level does not degrade with larger
  sigma (trend check with tolerance).
"""

import numpy as np
import pytest

from repro.eval import build_task, make_evaluator, mc_runs, mc_samples, trained_model
from repro.faults import MonteCarloCampaign, bitflip_sweep
from repro.models import proposed

from conftest import print_banner, run_once

SIGMAS = [0.1, 0.3, 0.5]
FLIP_LEVELS = [0.0, 0.05, 0.10]


@pytest.mark.paper_artifact("sec4f")
def test_initialization_ablation(benchmark, preset):
    task = build_task("audio", preset=preset)

    def experiment():
        rows = []
        for sigma in SIGMAS:
            method = proposed(sigma_gamma=sigma, sigma_beta=sigma)
            model = trained_model(task, method, preset)
            evaluator = make_evaluator(
                "audio", task.test_set, method, mc_samples=mc_samples(preset)
            )
            campaign = MonteCarloCampaign(
                model, evaluator, n_runs=mc_runs(preset), base_seed=0
            )
            results = campaign.sweep(bitflip_sweep(FLIP_LEVELS))
            rows.append((sigma, [r.mean for r in results], [r.std for r in results]))
        return rows

    rows = run_once(benchmark, experiment)

    print_banner("Section IV-F: initialization sigma ablation (audio / bit flips)")
    header = f"{'sigma':>6} | " + " | ".join(f"flip={l:4.0%}" for l in FLIP_LEVELS)
    print(header)
    for sigma, means, stds in rows:
        print(f"{sigma:6.1f} | " + " | ".join(
            f"{m:.3f}±{s:.3f}" for m, s in zip(means, stds)))

    clean = {sigma: means[0] for sigma, means, _ in rows}
    worst = {sigma: means[-1] for sigma, means, _ in rows}
    # Every configuration trains (clean accuracy far above 10-class chance).
    assert all(v > 0.3 for v in clean.values())
    # Larger init sigma should not *improve* clean accuracy meaningfully
    # (the paper reports a 1-2% cost).
    assert clean[SIGMAS[-1]] <= clean[SIGMAS[0]] + 0.05
    # Robustness trend: the largest sigma is not less robust than the
    # smallest at the strongest fault level (tolerance for MC noise).
    assert worst[SIGMAS[-1]] >= worst[SIGMAS[0]] - 0.10
