"""Campaign-engine benchmark: scenario batching vs the PR 3 MC-batched
backend.

Runs one Monte Carlo uniform-noise severity sweep (tiny CO2/LSTM task,
the tiny preset's native ``n_runs=3`` chips and ``mc_samples=4`` Bayesian
passes, 8 severity levels, evaluation capped at 16 windows) in two
configurations of the ``batched`` executor:

* **baseline** — the PR 3 engine: every severity level pays its own
  stacked forward carrying a ``chips x mc_samples`` instance axis
  (``scenario_batched=False``);
* **scenario-batched** — this PR's engine: ALL 8 same-kind severity
  levels stack along a scenario-major sub-axis above chips and samples,
  so the whole sweep runs as ONE forward carrying
  ``scenarios x chips x mc_samples`` instances.

The evaluation cap keeps per-op tensor work small, so the benchmark
measures what scenario batching actually removes — the per-pass Python
dispatch (one forward's worth of interpreter work per severity level) —
rather than numpy element throughput, which is identical in both modes.

Per-(scenario, chip) values are asserted bit-identical, throughput is
recorded to ``BENCH_pr4.json`` (machine-readable perf trajectory, see
``docs/benchmarks.md``), and the ≥1.3x assertion is unconditional — like
the chip- and MC-batching benchmarks it needs no parallel hardware,
because the win is dispatch amortization on a single core (measured
~1.6x on the 1-CPU reference container).

Run explicitly (benchmarks are excluded from tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_scenario_batched_speedup.py -s
"""

import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, uniform_sweep
from repro.models import proposed

from conftest import print_banner
from recorder import bench_path, record_bench

N_RUNS = 3  # the tiny preset's native chip count (mc_runs("tiny"))
MC_SAMPLES = 4  # the tiny preset's native Bayesian pass count (mc_samples("tiny"))
MAX_EVAL_SAMPLES = 16  # small eval batch: isolates per-pass dispatch overhead
LEVELS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4]
REPEATS = 8  # timed sweeps per configuration; min-of-repeats kills noise
MIN_SPEEDUP = 1.3


def _campaign(scenario_batched: bool) -> MonteCarloCampaign:
    task = build_task("co2", preset="tiny")
    method = proposed()
    model = trained_model(task, method, "tiny", seed=0)
    evaluator = make_evaluator(
        task.name,
        task.test_set,
        method,
        mc_samples=MC_SAMPLES,
        max_samples=MAX_EVAL_SAMPLES,
    )
    return MonteCarloCampaign(
        model,
        evaluator,
        n_runs=N_RUNS,
        base_seed=0,
        executor="batched",
        scenario_batched=scenario_batched,
        # Pin PR 5's plan axis off so this benchmark keeps isolating
        # scenario batching alone (see benchmarks/test_plan_speedup.py for
        # the plan-replay ratio on the same sweep).
        plan=False,
    )


@pytest.mark.paper_artifact("campaign-engine")
def test_scenario_batched_sweep_speedup():
    print_banner(
        f"Campaign engine: PR3 MC-batched vs scenario-batched "
        f"(co2/LSTM, {len(LEVELS)} levels, n_runs={N_RUNS}, "
        f"mc_samples={MC_SAMPLES})"
    )
    specs = uniform_sweep(LEVELS)
    cells = len(LEVELS) * N_RUNS
    timings = {}
    results = {}

    def _timed(label, campaign):
        campaign.sweep(specs)  # warmup (warms data/model/index caches)
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            results[label] = campaign.sweep(specs)
            best = min(best, time.perf_counter() - start)
        timings[label] = best

    # Baseline: the PR 3 engine — one stacked pass per severity level.
    clear_memory_cache()
    _timed("pr3-mc-batched", _campaign(scenario_batched=False))

    # This PR: all severity levels in one scenario-major stacked pass.
    clear_memory_cache()
    _timed("scenario-batched", _campaign(scenario_batched=True))

    for label in ("pr3-mc-batched", "scenario-batched"):
        print(
            f"{label:>16}: {timings[label] * 1000:7.1f}ms/sweep "
            f"({cells / timings[label]:7.1f} cells/s)"
        )

    for baseline_result, scenario_result in zip(
        results["pr3-mc-batched"], results["scenario-batched"]
    ):
        np.testing.assert_array_equal(
            baseline_result.values, scenario_result.values
        )

    speedup = timings["pr3-mc-batched"] / timings["scenario-batched"]
    print(f" speedup: {speedup:.2f}x (threshold {MIN_SPEEDUP:.1f}x)")
    target = bench_path("pr4")
    record_bench(
        "co2", "pr3-mc-batched", cells / timings["pr3-mc-batched"], 1.0,
        bench_file=target,
    )
    record_bench(
        "co2", "scenario-batched", cells / timings["scenario-batched"],
        speedup, bench_file=target,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected the scenario-batched engine to be >={MIN_SPEEDUP}x faster "
        f"than the PR 3 MC-batched backend on the tiny LSTM severity sweep, "
        f"got {speedup:.2f}x"
    )
