"""Shared configuration for the paper-artifact benchmarks.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the paper
(see DESIGN.md §4): it trains — or loads from the shared ``.repro_cache`` —
the models involved, runs the Monte Carlo fault campaign, prints the same
rows/series the paper reports, and asserts the qualitative *shape* of the
result (who wins, direction of degradation), not absolute numbers.

Scale is controlled by presets (``REPRO_PRESET=tiny|small|paper`` or
``REPRO_FULL=1``); the default ``small`` finishes on a laptop CPU.
``pytest-benchmark`` wraps the measured kernel of each experiment with
``rounds=1`` (experiments are minutes-long; statistical timing repetition
is not meaningful here).
"""

import numpy as np
import pytest

from repro.eval import active_preset
from repro.tensor import manual_seed


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): benchmark regenerates a paper artifact"
    )


@pytest.fixture(scope="session")
def preset() -> str:
    return active_preset(default="small")


@pytest.fixture(autouse=True)
def _seed():
    manual_seed(0)
    yield


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
