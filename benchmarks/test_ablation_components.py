"""Design-choice ablations called out in DESIGN.md (beyond the paper).

Three component ablations isolate what each ingredient of the proposed
layer contributes on the audio task:

1. **affine-dropout probability** p ∈ {0, 0.3, 0.5} — p=0 removes the
   stochastic affine transformation entirely (pure inverted normalization);
2. **granularity** — vector-wise (paper's hardware-friendly choice) vs
   element-wise masks;
3. **order** — inverted (affine first) vs conventional order with the same
   stochastic affine parameters (the ConventionalNormAdapter), isolating
   the contribution of normalizing *after* the stochastic transformation.

Shape claims: every variant trains; the stochastic variants (p>0) are not
less robust than p=0 at the strongest fault level (tolerance for MC
noise); the inverted order's robustness is within tolerance of — or better
than — the conventional order (the paper argues inversion is what keeps
the weighted sum standardized under faults).
"""

import numpy as np
import pytest

from repro.eval import build_task, make_evaluator, mc_runs, mc_samples, trained_model
from repro.faults import MonteCarloCampaign, bitflip_sweep
from repro.models import MethodConfig

from conftest import print_banner, run_once

FLIP_LEVELS = [0.0, 0.05, 0.10]

VARIANTS = [
    ("p=0 (no affine dropout)", MethodConfig(name="proposed", p=0.0)),
    ("p=0.3 vector (paper)", MethodConfig(name="proposed", p=0.3)),
    ("p=0.5 vector", MethodConfig(name="proposed", p=0.5)),
    ("p=0.3 element", MethodConfig(name="proposed", p=0.3, granularity="element")),
    (
        "conventional order",
        MethodConfig(name="proposed-conventional-order", p=0.3),
    ),
]


@pytest.mark.paper_artifact("ablation-components")
def test_component_ablation(benchmark, preset):
    task = build_task("audio", preset=preset)

    def experiment():
        rows = []
        for label, method in VARIANTS:
            model = trained_model(task, method, preset)
            evaluator = make_evaluator(
                "audio", task.test_set, method, mc_samples=mc_samples(preset)
            )
            campaign = MonteCarloCampaign(
                model, evaluator, n_runs=mc_runs(preset), base_seed=0
            )
            results = campaign.sweep(bitflip_sweep(FLIP_LEVELS))
            rows.append((label, [r.mean for r in results]))
        return rows

    rows = run_once(benchmark, experiment)

    print_banner("Component ablation (audio / bit flips)")
    header = f"{'variant':>26} | " + " | ".join(f"flip={l:4.0%}" for l in FLIP_LEVELS)
    print(header)
    for label, means in rows:
        print(f"{label:>26} | " + " | ".join(f"{m:8.3f}" for m in means))

    values = dict(rows)
    # Everything trains to usable clean accuracy.
    assert all(means[0] > 0.3 for _, means in rows)
    # Affine dropout (the stochastic component) should not hurt robustness
    # at the strongest fault level relative to the dropout-free layer.
    assert values["p=0.3 vector (paper)"][-1] >= values["p=0 (no affine dropout)"][-1] - 0.12
    # The inverted order should hold up against the conventional order.
    assert values["p=0.3 vector (paper)"][-1] >= values["conventional order"][-1] - 0.12
