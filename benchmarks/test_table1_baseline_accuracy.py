"""Table I: fault-free inference accuracy of all methods on all tasks.

Paper reference (Table I):

    Topology   Dataset          metric  W/A  NN      SpinDrop  SpatialSD  Proposed
    ResNet-18  CIFAR-10         Acc ↑   1/1  89.01%  89.82%    90.5%      89.82%
    M5         Speech Commands  Acc ↑   8/8  83.97%  84.83%    -          85.28%
    U-Net      DRIVE            mIoU ↑  1/4  66.87%  67.93%    64.6%      67.54%
    LSTM       Atmospheric CO2  RMSE ↓  8/8  0.1264  0.1534    -          0.1219

Shape claims checked here (absolute numbers differ — synthetic data,
scaled models; see DESIGN.md §2):

* the proposed method's clean metric is comparable to the conventional NN
  (within a modest band) on every task, and
* the proposed method is not dominated by the dropout baselines everywhere.
"""

import pytest

from repro.eval import baseline_metrics, build_task, format_table_row, table_header
from repro.models import all_methods

from conftest import print_banner, run_once

TASK_ROWS = [
    ("image", "ResNet-18", "synthetic-images", "Accuracy", "1/1"),
    ("audio", "M5", "synthetic-speech", "Accuracy", "8/8"),
    ("vessels", "U-Net", "synthetic-DRIVE", "mIoU", "1/4"),
    ("co2", "LSTM", "synthetic-CO2", "RMSE", "8/8"),
]

#: Conventional-norm family per task (BatchNorm for CNN baselines, the
#: GroupNorm U-Net variant — BatchNorm is unusable at batch size 4).
CONVENTIONAL_NORM = {"image": "batch", "audio": "batch", "co2": "batch",
                     "vessels": "group"}


@pytest.mark.paper_artifact("table1")
@pytest.mark.parametrize("task_name,topology,dataset,metric,precision", TASK_ROWS)
def test_table1_row(benchmark, preset, task_name, topology, dataset, metric, precision):
    task = build_task(task_name, preset=preset)
    methods = all_methods(conventional_norm=CONVENTIONAL_NORM[task_name])

    row = run_once(benchmark, lambda: baseline_metrics(task, methods, preset=preset))

    print_banner(f"Table I row: {topology} / {dataset} ({metric} "
                 f"{'↓' if not task.higher_is_better else '↑'}, W/A {precision})")
    print(table_header())
    print(format_table_row(topology, dataset, metric, precision, row))

    proposed_value = row["proposed"]
    conventional_value = row["conventional"]
    if task.higher_is_better:
        # Paper: comparable accuracy — allow a modest clean-accuracy band.
        assert proposed_value >= conventional_value - 0.15, (
            f"proposed ({proposed_value:.3f}) far below conventional "
            f"({conventional_value:.3f}) fault-free"
        )
        assert proposed_value > 1.5 / 10  # far above 10-class chance
    else:
        assert proposed_value <= conventional_value * 2.0, (
            f"proposed RMSE ({proposed_value:.4f}) more than 2x conventional "
            f"({conventional_value:.4f})"
        )
        # Paper ordering: proposed beats SpinDrop on RMSE.
        assert proposed_value <= row["spindrop"] * 1.25
