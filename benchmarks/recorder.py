"""Machine-readable benchmark recorder.

Speedup benchmarks append one row per measured configuration to
``BENCH_pr3.json`` at the repo root, so the performance trajectory across
PRs is diffable and scriptable instead of buried in pytest stdout::

    [{"task": "co2", "backend": "mc-batched", "cells_per_sec": 195.7,
      "ratio": 2.83}, ...]

``ratio`` is the speedup of the row's backend over the benchmark's own
baseline backend (1.0 for the baseline row itself).  Rows are appended —
never rewritten — keyed by nothing: every benchmark run adds its fresh
measurements, and consumers take the latest row per (task, backend).
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

#: Repo-root default target (benchmarks run from the repo root).
BENCH_FILE = os.path.join(os.path.dirname(__file__), "..", "BENCH_pr3.json")


def record_bench(
    task: str,
    backend: str,
    cells_per_sec: float,
    ratio: float,
    bench_file: Optional[str] = None,
) -> List[dict]:
    """Append one ``{task, backend, cells_per_sec, ratio}`` row.

    Returns the full row list after the append.  A missing or corrupt
    file starts fresh — the recorder must never fail a benchmark.
    """
    path = bench_file or BENCH_FILE
    rows: List[dict] = []
    try:
        with open(path) as fh:
            loaded = json.load(fh)
        if isinstance(loaded, list):
            rows = loaded
    except (OSError, ValueError):
        rows = []
    rows.append(
        {
            "task": str(task),
            "backend": str(backend),
            "cells_per_sec": round(float(cells_per_sec), 2),
            "ratio": round(float(ratio), 3),
        }
    )
    with open(path, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    return rows
