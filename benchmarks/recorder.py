"""Machine-readable benchmark recorder.

Speedup benchmarks append one row per measured configuration to a
``BENCH_<pr>.json`` file at the repo root (one file per PR that added a
speedup benchmark, so the performance trajectory across PRs is diffable
and scriptable instead of buried in pytest stdout)::

    [{"schema_version": 3, "task": "co2", "backend": "mc-batched",
      "cells_per_sec": 195.7, "ratio": 2.83}, ...]

``ratio`` is the speedup of the row's backend over the benchmark's own
baseline backend (1.0 for the baseline row itself).  Rows are appended —
never rewritten — keyed by nothing: every benchmark run adds its fresh
measurements, and consumers take the latest row per (task, backend).
The row schema is documented in ``docs/benchmarks.md``; bump
:data:`SCHEMA_VERSION` when a field is added, renamed, or reinterpreted
(rows without the field predate version 2).

Appends are atomic: the full row list is serialized to a sibling
temporary file which then replaces the target via ``os.replace``, so an
interrupted benchmark run (Ctrl-C, OOM-kill mid-``json.dump``) can never
leave a truncated or corrupt trajectory file behind — readers see either
the old complete list or the new complete list.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

#: Version of the row schema written by :func:`record_bench`.  ``3``
#: allowed benchmark-specific ``extra`` fields to be merged into a row
#: (first used by ``BENCH_pr6.json``'s optimizer step counters); ``2``
#: added the ``schema_version`` field itself; ``1`` rows
#: (``BENCH_pr3.json`` before this field existed) carry no version
#: marker.
SCHEMA_VERSION = 3

def bench_path(tag: str) -> str:
    """Repo-root path of the ``BENCH_<tag>.json`` trajectory file."""
    return os.path.join(os.path.dirname(__file__), "..", f"BENCH_{tag}.json")


#: Default target (the PR 3 benchmarks, which predate per-PR bench files
#: taking a tag).
BENCH_FILE = bench_path("pr3")


def record_bench(
    task: str,
    backend: str,
    cells_per_sec: float,
    ratio: float,
    bench_file: Optional[str] = None,
    extra: Optional[dict] = None,
) -> List[dict]:
    """Append one ``{schema_version, task, backend, cells_per_sec, ratio}``
    row.

    ``extra`` fields (benchmark-specific measurements such as step-count
    reductions) are merged into the row after the standard keys; they may
    not override them.  Returns the full row list after the append.  A
    missing or corrupt file starts fresh — the recorder must never fail a
    benchmark.  The write is temp-file-then-rename atomic (see module
    docstring).
    """
    path = bench_file or BENCH_FILE
    rows: List[dict] = []
    try:
        with open(path) as fh:
            loaded = json.load(fh)
        if isinstance(loaded, list):
            rows = loaded
    except (OSError, ValueError):
        rows = []
    row = {
        "schema_version": SCHEMA_VERSION,
        "task": str(task),
        "backend": str(backend),
        "cells_per_sec": round(float(cells_per_sec), 2),
        "ratio": round(float(ratio), 3),
    }
    if extra:
        for key, value in extra.items():
            row.setdefault(key, value)
    rows.append(row)
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w") as fh:
            json.dump(rows, fh, indent=2)
            fh.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    return rows
