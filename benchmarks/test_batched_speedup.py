"""Campaign-engine benchmark: chip-batched backend vs the serial reference.

Runs one Monte Carlo uniform-noise campaign (tiny CO2/LSTM task,
``n_runs=32``) on the serial and batched backends, asserts the per-chip
values are bit-identical, and reports wall-clock throughput for each.
Unlike the process-pool benchmark (``test_parallel_speedup.py``), the
batched backend needs no parallel hardware: it replaces ``C``
Python-dispatched forwards by one stacked tensor pass, so the speedup
materializes even on a 1-core container — the ≥3× assertion is
unconditional.  The LSTM task is the engine's best case (hundreds of tiny
matmuls per forward, all dispatch overhead); see docs/campaign-engine.md
for per-task ratios.

Run explicitly (benchmarks are excluded from tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_batched_speedup.py -s
"""

import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, uniform_sweep
from repro.models import proposed

from conftest import print_banner
from recorder import record_bench

N_RUNS = 32
LEVELS = [0.0, 0.1, 0.2]
MIN_SPEEDUP = 3.0


def _campaign(executor: str) -> MonteCarloCampaign:
    task = build_task("co2", preset="tiny")
    method = proposed()
    model = trained_model(task, method, "tiny", seed=0)
    evaluator = make_evaluator(task.name, task.test_set, method, mc_samples=4)
    # Pin the PR 4 scenario axis off: this benchmark measures the PR 2
    # chip-batching win in isolation (its sweep would otherwise stack the
    # two nonzero levels and inflate the ratio).
    return MonteCarloCampaign(
        model, evaluator, n_runs=N_RUNS, base_seed=0, executor=executor,
        scenario_batched=False if executor == "batched" else None,
        # Pin PR 5's plan axis off: this benchmark isolates chip batching.
        plan=False,
    )


@pytest.mark.paper_artifact("campaign-engine")
def test_batched_campaign_speedup():
    print_banner(
        f"Campaign engine: serial vs chip-batched (co2/LSTM, n_runs={N_RUNS})"
    )
    specs = uniform_sweep(LEVELS)
    cells = 1 + (len(LEVELS) - 1) * N_RUNS
    timings = {}
    results = {}
    for executor in ("serial", "batched"):
        clear_memory_cache()
        campaign = _campaign(executor)
        start = time.perf_counter()
        results[executor] = campaign.sweep(specs)
        timings[executor] = time.perf_counter() - start
        print(f"{executor:>8}: {timings[executor]:6.2f}s "
              f"({cells / timings[executor]:6.2f} cells/s)")

    for serial_result, batched_result in zip(results["serial"], results["batched"]):
        np.testing.assert_array_equal(serial_result.values, batched_result.values)
    speedup = timings["serial"] / timings["batched"]
    print(f" speedup: {speedup:.2f}x (threshold {MIN_SPEEDUP:.1f}x)")
    record_bench("co2", "serial", cells / timings["serial"], 1.0)
    record_bench("co2", "batched", cells / timings["batched"], speedup)
    assert speedup >= MIN_SPEEDUP, (
        f"expected the chip-batched backend to be >={MIN_SPEEDUP}x faster "
        f"than serial on the tiny LSTM campaign, got {speedup:.2f}x"
    )
