"""Campaign-engine benchmark: MC-sample batching vs the PR 2 chip-batched
backend.

Runs one Monte Carlo uniform-noise campaign (tiny CO2/LSTM task, the tiny
preset's native ``n_runs=3`` chips with 8 Bayesian passes — between the
tiny smoke setting of 4 and the paper's 20) in two configurations:

* **baseline** — the PR 2 ``batched`` backend: chips stacked, Monte Carlo
  samples looped, weights requantized on every forward
  (``mc_batched=False`` under ``deploy_cache_disabled()``);
* **mc-batched** — this PR's engine: one forward per scenario carrying the
  full ``chips x mc_samples`` instance axis, quantized codes served from
  the deployment-frozen cache.

Per-chip values are asserted bit-identical, throughput is recorded to
``BENCH_pr3.json`` (machine-readable perf trajectory), and the ≥2x
assertion is unconditional — like the chip-batching benchmark it needs no
parallel hardware, because the win is Python-dispatch amortization plus
skipped requantization on a single core.

Run explicitly (benchmarks are excluded from tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_mc_batched_speedup.py -s
"""

import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, uniform_sweep
from repro.models import proposed
from repro.quant.layers import deploy_cache_disabled

from conftest import print_banner
from recorder import record_bench

N_RUNS = 3  # the tiny preset's native chip count (mc_runs("tiny"))
MC_SAMPLES = 8  # Bayesian passes (tiny smoke default: 4; paper: 20)
LEVELS = [0.0, 0.1, 0.2, 0.3, 0.4]
REPEATS = 8  # timed sweeps per configuration; min-of-repeats kills noise
MIN_SPEEDUP = 2.0


def _campaign(mc_batched: bool) -> MonteCarloCampaign:
    task = build_task("co2", preset="tiny")
    method = proposed()
    model = trained_model(task, method, "tiny", seed=0)
    evaluator = make_evaluator(
        task.name, task.test_set, method, mc_samples=MC_SAMPLES
    )
    # Pin the PR 4 scenario axis off: this benchmark isolates the PR 3
    # MC-sample-batching win over the PR 2 chip-batched backend.
    return MonteCarloCampaign(
        model,
        evaluator,
        n_runs=N_RUNS,
        base_seed=0,
        executor="batched",
        mc_batched=mc_batched,
        scenario_batched=False,
        # Pin PR 5's plan axis off: this benchmark isolates MC batching +
        # the deployment-frozen quantization cache, and plan replay would
        # accelerate the PR 2 baseline (skipping its per-forward
        # requantization) and compress the measured ratio.
        plan=False,
    )


@pytest.mark.paper_artifact("campaign-engine")
def test_mc_batched_campaign_speedup():
    print_banner(
        f"Campaign engine: PR2 chip-batched vs MC-batched "
        f"(co2/LSTM, n_runs={N_RUNS}, mc_samples={MC_SAMPLES})"
    )
    specs = uniform_sweep(LEVELS)
    cells = 1 + (len(LEVELS) - 1) * N_RUNS
    timings = {}
    results = {}

    def _timed(label, campaign):
        campaign.sweep(specs)  # warmup (warms data/model/index caches)
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            results[label] = campaign.sweep(specs)
            best = min(best, time.perf_counter() - start)
        timings[label] = best

    # Baseline: the PR 2 batched backend — MC samples looped, quantization
    # recomputed every forward (no deployment cache).
    clear_memory_cache()
    with deploy_cache_disabled():
        _timed("pr2-batched", _campaign(mc_batched=False))

    # This PR: chips x samples in one pass + deployment-frozen quantization.
    clear_memory_cache()
    _timed("mc-batched", _campaign(mc_batched=True))

    for label in ("pr2-batched", "mc-batched"):
        print(
            f"{label:>12}: {timings[label] * 1000:7.1f}ms/sweep "
            f"({cells / timings[label]:7.1f} cells/s)"
        )

    for baseline_result, mc_result in zip(
        results["pr2-batched"], results["mc-batched"]
    ):
        np.testing.assert_array_equal(baseline_result.values, mc_result.values)

    speedup = timings["pr2-batched"] / timings["mc-batched"]
    print(f" speedup: {speedup:.2f}x (threshold {MIN_SPEEDUP:.1f}x)")
    record_bench("co2", "pr2-batched", cells / timings["pr2-batched"], 1.0)
    record_bench("co2", "mc-batched", cells / timings["mc-batched"], speedup)
    assert speedup >= MIN_SPEEDUP, (
        f"expected the MC-batched engine to be >={MIN_SPEEDUP}x faster than "
        f"the PR 2 chip-batched backend on the tiny LSTM campaign, got "
        f"{speedup:.2f}x"
    )
