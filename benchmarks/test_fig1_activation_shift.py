"""Fig. 1: bit-flip faults shift and widen the weighted-sum distribution.

The paper motivates inverted normalization by showing (Fig. 1) that 10% and
20% bit flips visibly change the density of a layer's pre-normalization
activations.  This benchmark captures the weighted sums of a trained
network's deepest quantized layer at 0 / 10 / 20 % flips and prints the
histogram summary; the assertion checks the paper's qualitative message —
the faulty distributions diverge measurably from the fault-free one.
"""

import numpy as np
import pytest

from repro.eval import activation_shift_experiment, build_task, trained_model
from repro.models import proposed
from repro.tensor import Tensor

from conftest import print_banner, run_once


def _total_variation(a, b) -> float:
    pa = a.histogram / max(1, a.histogram.sum())
    pb = b.histogram / max(1, b.histogram.sum())
    return 0.5 * float(np.abs(pa - pb).sum())


@pytest.mark.paper_artifact("fig1")
def test_fig1_activation_distribution_shift(benchmark, preset):
    task = build_task("image", preset=preset)
    model = trained_model(task, proposed(), preset)
    x = Tensor(task.test_set.inputs[:32])

    results = run_once(
        benchmark,
        lambda: activation_shift_experiment(
            model, x, flip_rates=(0.0, 0.10, 0.20), layer_index=-1, bins=40
        ),
    )

    print_banner("Fig. 1: weighted-sum distribution under bit flips")
    print(f"{'scenario':>16} | {'mean':>9} | {'std':>9} | {'TV vs clean':>11}")
    clean = results[0.0]
    for rate in (0.0, 0.10, 0.20):
        r = results[rate]
        tv = _total_variation(clean, r)
        print(f"{r.label:>16} | {r.mean:9.3f} | {r.std:9.3f} | {tv:11.4f}")

    tv10 = _total_variation(clean, results[0.10])
    tv20 = _total_variation(clean, results[0.20])
    # Faults measurably move the distribution, and more faults move it more.
    assert tv10 > 0.01, "10% bit flips left the activation distribution unchanged"
    assert tv20 > tv10 * 0.8, "20% flips should distort at least as much as 10%"
    # Spread changes (paper's density plots widen/flatten under faults).
    assert abs(results[0.20].std - clean.std) / clean.std > 0.02
