"""Fig. 7: uncertainty under distribution shift and OOD detection.

Paper reference: test images are (left) contaminated with escalating
uniform noise and (right) rotated in 7-degree increments over 12 stages;
accuracy falls while predictive NLL rises.  Thresholding the per-input NLL
at the clean-test average detects up to 55.03% (uniform) and 78.95%
(rotation) of OOD instances.

Shape claims:

* accuracy at the strongest shift is well below clean accuracy,
* NLL at the strongest shift is above clean NLL,
* the NLL-threshold detector flags a substantial fraction of strongly
  shifted inputs (>= 30%) while flagging less on clean data.
"""

import numpy as np
import pytest

from repro.core import BayesianClassifier
from repro.data import noise_stages, rotation_stages
from repro.eval import build_task, mc_samples, trained_model
from repro.models import proposed
from repro.uncertainty import evaluate_shift_sweep

from conftest import print_banner, run_once


def _print_result(result, unit):
    print(f"{'shift':>9} | {'accuracy':>9} | {'NLL':>8} | {'flagged':>8}")
    for stage in result.stages:
        print(
            f"{stage.magnitude:8.1f}{unit} | {stage.accuracy:9.3f} | "
            f"{stage.nll:8.3f} | {stage.detection_rate:8.1%}"
        )
    print(f"overall OOD detection rate: {result.overall_detection_rate():.1%}")


@pytest.mark.paper_artifact("fig7")
@pytest.mark.parametrize("kind", ["rotation", "uniform"])
def test_fig7_shift_sweep(benchmark, preset, kind):
    task = build_task("image", preset=preset)
    model = trained_model(task, proposed(), preset)
    clf = BayesianClassifier(model, num_samples=mc_samples(preset))

    cap = 100 if preset != "paper" else len(task.test_set)
    inputs = task.test_set.inputs[:cap]
    labels = task.test_set.targets[:cap]
    if kind == "rotation":
        magnitudes = rotation_stages()  # 0..84 degrees in 7-degree steps
        unit = "°"
    else:
        magnitudes = noise_stages(max_strength=2.0, stages=8)
        unit = " "

    result = run_once(
        benchmark,
        lambda: evaluate_shift_sweep(clf, inputs, labels, kind, magnitudes),
    )

    print_banner(f"Fig. 7: {kind} shift sweep")
    _print_result(result, unit)

    clean, worst = result.stages[0], result.stages[-1]
    assert worst.accuracy < clean.accuracy - 0.15, "shift failed to degrade accuracy"
    assert worst.nll > clean.nll, "NLL did not rise under shift"
    # Detection: strong shifts flagged far above the clean false-positive rate.
    assert worst.detection_rate >= 0.30
    assert worst.detection_rate > clean.detection_rate
    # Monotone trend (allowing local noise): late-half mean NLL above
    # early-half mean NLL.
    half = len(result.nlls) // 2
    assert result.nlls[half:].mean() > result.nlls[:half].mean()
