"""Fig. 4: STT-MRAM non-ideality examples at the device level.

(a) stochastic switching of the magnetic tunnel junction under different
    write voltages — switching probability vs pulse duration;
(b) influence of temperature on the resistance distributions (Monte Carlo
    simulation of R_P / R_AP lots).

Shape claims: P_sw is monotone in voltage and pulse width, spanning the
deterministic-to-stochastic regimes the SpinDrop RNGs exploit; rising
temperature degrades TMR, moving the distributions together and increasing
the midpoint-read bit-error rate (the physical grounding of the bit-flip
fault model).
"""

import numpy as np
import pytest

from repro.imc import (
    MTJParams,
    bit_error_rate,
    sample_resistances,
    switching_curve,
    tmr_at_temperature,
)

from conftest import print_banner, run_once

VOLTAGES = [0.30, 0.35, 0.40, 0.45]
PULSES_NS = np.logspace(0, 3, 13)  # 1 ns .. 1 us
TEMPERATURES = [300, 350, 400, 450, 500]


@pytest.mark.paper_artifact("fig4a")
def test_fig4a_stochastic_switching(benchmark):
    curves = run_once(benchmark, lambda: switching_curve(VOLTAGES, PULSES_NS))

    print_banner("Fig. 4a: switching probability vs pulse width")
    header = f"{'pulse[ns]':>10} | " + " | ".join(f"{v:>7.2f}V" for v in VOLTAGES)
    print(header)
    for i, t in enumerate(PULSES_NS):
        print(f"{t:10.1f} | " + " | ".join(f"{curves[v][i]:8.4f}" for v in VOLTAGES))

    for v in VOLTAGES:
        assert (np.diff(curves[v]) >= -1e-12).all(), f"non-monotone in pulse at {v}V"
    for lo, hi in zip(VOLTAGES[:-1], VOLTAGES[1:]):
        assert (curves[hi] >= curves[lo] - 1e-12).all(), "non-monotone in voltage"
    # The family spans the deterministic and stochastic regimes.
    assert curves[VOLTAGES[-1]][-1] > 0.999
    assert curves[VOLTAGES[0]][0] < 0.01


@pytest.mark.paper_artifact("fig4b")
def test_fig4b_thermal_resistance_distributions(benchmark):
    params = MTJParams(sigma_r=0.12)
    rng = np.random.default_rng(0)

    def experiment():
        rows = []
        for temp in TEMPERATURES:
            r_p, r_ap = sample_resistances(temp, 20000, rng, params)
            rows.append(
                (temp, r_p.mean(), r_p.std(), r_ap.mean(), r_ap.std(),
                 tmr_at_temperature(temp, params), bit_error_rate(temp, params))
            )
        return rows

    rows = run_once(benchmark, experiment)

    print_banner("Fig. 4b: resistance distributions vs temperature (MC)")
    print(f"{'T[K]':>6} | {'R_P [Ω]':>16} | {'R_AP [Ω]':>16} | "
          f"{'TMR':>6} | {'read BER':>9}")
    for temp, rp_m, rp_s, rap_m, rap_s, tmr, ber in rows:
        print(f"{temp:6d} | {rp_m:8.0f} ±{rp_s:5.0f} | {rap_m:8.0f} ±{rap_s:5.0f} | "
              f"{tmr:6.3f} | {ber:9.2e}")

    tmrs = [r[5] for r in rows]
    assert all(a > b for a, b in zip(tmrs, tmrs[1:])), "TMR must fall with T"
    separations = [
        (r[3] - r[1]) / np.sqrt(r[2] ** 2 + r[4] ** 2) for r in rows
    ]
    assert all(
        a >= b - 1e-9 for a, b in zip(separations, separations[1:])
    ), "read margin must shrink with temperature"
    bers = [r[6] for r in rows]
    assert bers[-1] >= bers[0], "bit-error rate must not fall with temperature"
