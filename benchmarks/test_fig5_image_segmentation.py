"""Fig. 5: robustness of ResNet-18 (images) and U-Net (vessels).

Paper reference: Fig. 5 shows, for each task, accuracy/mIoU vs (left)
bit-flip rate and (right) additive conductance variation, mean ± one std
over 100 Monte Carlo chip instances, with the proposed method degrading
gracefully while the conventional NN and Dropout-based BayNNs fall off
steeply (improvements up to 58.11% over the NN and 55.62% over Dropout
BayNNs at high fault rates).

Shape claims checked at each panel's highest fault level:

* every method's metric degrades relative to fault-free (sanity),
* the proposed method's metric is at least as good as the conventional
  NN's (within a small tolerance), and
* the proposed method shows a positive improvement over the conventional
  NN somewhere along the sweep.
"""

import numpy as np
import pytest

from repro.eval import build_task, format_sweep, run_robustness_sweep, summarize_improvements
from repro.faults import additive_sweep, bitflip_sweep
from repro.models import all_methods

from conftest import print_banner, run_once

PANELS = [
    ("image", "batch", "bitflip", [0.0, 0.05, 0.10, 0.20]),
    ("image", "batch", "additive", [0.0, 0.2, 0.5, 1.0]),
    ("vessels", "group", "bitflip", [0.0, 0.05, 0.10, 0.20]),
    ("vessels", "group", "additive", [0.0, 0.2, 0.5, 1.0]),
]


def _specs(kind, levels):
    return bitflip_sweep(levels) if kind == "bitflip" else additive_sweep(levels)


@pytest.mark.paper_artifact("fig5")
@pytest.mark.parametrize("task_name,conv_norm,kind,levels", PANELS)
def test_fig5_panel(benchmark, preset, task_name, conv_norm, kind, levels):
    task = build_task(task_name, preset=preset)
    methods = all_methods(conventional_norm=conv_norm)

    sweep = run_once(
        benchmark,
        lambda: run_robustness_sweep(
            task, methods, _specs(kind, levels), preset=preset
        ),
    )

    print_banner(f"Fig. 5 panel: {task_name} / {kind}")
    print(format_sweep(sweep))
    print(summarize_improvements(sweep))

    proposed = sweep.curves["proposed"]
    conventional = sweep.curves["conventional"]

    # Tolerance bands: the paper reports large wins for image
    # classification but only a "marginal improvement" for segmentation —
    # and our scaled U-Net lands marginally *below* the group-norm NN
    # (EXPERIMENTS.md, honest-deviation #1) — so the segmentation band is
    # wider.
    tolerance = 0.10 if task_name == "image" else 0.20
    # Degradation sanity: faults never help.
    assert proposed.means[-1] <= proposed.clean + 0.05
    assert conventional.means[-1] <= conventional.clean + 0.05
    # Graceful degradation: proposed within the band of (or above) the
    # conventional NN at the worst fault level.
    assert proposed.means[-1] >= conventional.means[-1] - tolerance, (
        f"proposed ({proposed.means[-1]:.3f}) below conventional "
        f"({conventional.means[-1]:.3f}) at {kind}={levels[-1]}"
    )
    if task_name == "image":
        # The paper's headline: large improvement at high fault levels.
        assert sweep.improvement_over("conventional").max() > 10.0
