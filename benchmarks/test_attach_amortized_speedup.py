"""Campaign-engine benchmark: attach-once fault programming (PR 7).

Runs a Monte Carlo uniform-noise severity sweep (tiny CO2/LSTM task,
8 severity levels, one chip per level, ``mc_samples=4`` Bayesian passes,
evaluation capped at 64 windows) on the **serial** executor in two
configurations:

* **baseline** — the PR 6 engine (``attach_amortize=False``): every cell
  of every sweep re-attaches its fault hooks from scratch.  On the
  serial path each re-attach mints fresh hook objects with fresh fault
  tokens, so every cell's plan key changes and *every* forward re-traces
  — the plan cache never reaches steady state, and the quantized-weight
  deploy cache (keyed on the fault token) stays cold too;
* **amortized** — this PR's engine (``attach_amortize=True``, the
  default): each (scenario, run) cell programs its fault patterns once
  into the campaign-level program registry; repeated sweeps reinstall
  the *same* frozen weight hooks (stable fault tokens) and skip all
  seed-stream work, so steady-state sweeps are pure plan replay against
  a warm deploy cache.

The sweep is sized to the caches on purpose: 8 cells fit both the
8-entry per-model plan cache and the 16-entry program registry, so the
amortized configuration can actually reach steady state (a working set
larger than either cap degrades to the baseline behavior by design —
the registry is an LRU, not an unbounded log).

Each configuration gets its own freshly retrained model object
(deterministic retraining gives bit-identical weights), because plan
caches and program registries are per-model: a shared model would let
the baseline's rotating fault tokens evict the amortized plans.  Timed
sweeps are interleaved (baseline, amortized, baseline, ...) with a
min-of-repeats ratio, so machine drift hits both configurations equally.

Asserted: per-(scenario, run) values bit-identical between the two
configurations, ``attach_skipped`` strictly growing during timed sweeps,
zero per-cell attaches *and* zero re-traces after warmup (the amortized
steady state does no attach work and no tracing at all), and a >=1.15x
cells/s win.  Throughput for both configurations is recorded to
``BENCH_pr7.json`` (schema v3; the amortized row carries
``attach_programmed``/``attach_skipped`` extras — see
``docs/benchmarks.md``).

Run explicitly (benchmarks are excluded from tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_attach_amortized_speedup.py -s
"""

import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, program_stats, uniform_sweep
from repro.models import proposed
from repro.tensor import plan as plan_mod

from conftest import print_banner
from recorder import bench_path, record_bench

N_RUNS = 1  # one chip per level: 8 cells fit the 8-entry plan cache
MC_SAMPLES = 4  # the tiny preset's native Bayesian pass count (mc_samples("tiny"))
MAX_EVAL_SAMPLES = 64
LEVELS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4]
REPEATS = 8  # interleaved timed sweeps per configuration
MIN_SPEEDUP = 1.15


def _build():
    task = build_task("co2", preset="tiny")
    method = proposed()
    model = trained_model(task, method, "tiny", seed=0)
    evaluator = make_evaluator(
        task.name,
        task.test_set,
        method,
        mc_samples=MC_SAMPLES,
        max_samples=MAX_EVAL_SAMPLES,
    )
    return model, evaluator


def _campaign(model, evaluator, amortize: bool) -> MonteCarloCampaign:
    return MonteCarloCampaign(
        model,
        evaluator,
        n_runs=N_RUNS,
        base_seed=0,
        executor="serial",
        plan=True,
        plan_opt=True,
        attach_amortize=amortize,
    )


@pytest.mark.paper_artifact("campaign-engine")
def test_attach_amortized_sweep_speedup():
    print_banner(
        f"Campaign engine: per-cell attach (PR6) vs attach-once programming "
        f"(co2/LSTM serial, {len(LEVELS)} levels, n_runs={N_RUNS}, "
        f"mc_samples={MC_SAMPLES})"
    )
    specs = uniform_sweep(LEVELS)
    cells = len(LEVELS) * N_RUNS
    timings = {"attach-full": float("inf"), "attach-amortized": float("inf")}
    results = {}

    def _prepare(label, amortize):
        # Fresh caches per build: deterministic retraining gives both
        # configurations bit-identical weights on distinct model objects
        # (distinct plan caches and program registries), so interleaved
        # sweeps cannot cross-evict each other's plans.
        clear_memory_cache()
        model, evaluator = _build()
        return label, _campaign(model, evaluator, amortize), model

    plan_mod.clear_plans()
    prepared = [
        _prepare("attach-full", amortize=False),
        _prepare("attach-amortized", amortize=True),
    ]
    assert prepared[0][2] is not prepared[1][2]  # per-config model objects

    # Warmup: the amortized configuration programs all 8 cells (registry
    # misses) and traces their plans; the baseline traces its first set.
    for label, campaign, model in prepared:
        results[label] = campaign.sweep(specs)
    amortized_model = prepared[1][2]
    warm_programs = program_stats(amortized_model)
    attached_after_warmup = warm_programs.attached
    skipped_after_warmup = warm_programs.skipped
    traces_after_warmup = plan_mod.plan_stats(amortized_model).traces
    assert attached_after_warmup == cells

    for _ in range(REPEATS):
        for label, campaign, _model in prepared:
            start = time.perf_counter()
            results[label] = campaign.sweep(specs)
            timings[label] = min(timings[label], time.perf_counter() - start)

    for label in ("attach-full", "attach-amortized"):
        print(
            f"{label:>16}: {timings[label] * 1000:7.1f}ms/sweep "
            f"({cells / timings[label]:7.1f} cells/s)"
        )

    # Bit-identity: amortized replay == full re-attach, per (scenario, run).
    for full_result, amortized_result in zip(
        results["attach-full"], results["attach-amortized"]
    ):
        np.testing.assert_array_equal(
            full_result.values, amortized_result.values
        )

    stats = program_stats(amortized_model)
    print(
        f" programs: attached={stats.attached} skipped={stats.skipped} "
        f"(warmup attached {attached_after_warmup})"
    )
    assert stats.attached == attached_after_warmup, (
        "amortized steady state re-attached cells after warmup: "
        f"{attached_after_warmup} -> {stats.attached}"
    )
    assert stats.skipped > skipped_after_warmup, (
        "timed amortized sweeps never hit the program registry"
    )
    traces_now = plan_mod.plan_stats(amortized_model).traces
    assert traces_now == traces_after_warmup, (
        "amortized steady state re-traced plans after warmup: "
        f"{traces_after_warmup} -> {traces_now} (unstable fault tokens?)"
    )

    speedup = timings["attach-full"] / timings["attach-amortized"]
    print(f" speedup: {speedup:.2f}x (threshold {MIN_SPEEDUP:.2f}x)")
    target = bench_path("pr7")
    record_bench(
        "co2", "attach-full", cells / timings["attach-full"], 1.0,
        bench_file=target,
    )
    record_bench(
        "co2", "attach-amortized", cells / timings["attach-amortized"],
        speedup,
        bench_file=target,
        extra={
            "attach_programmed": int(stats.attached),
            "attach_skipped": int(stats.skipped),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected attach-once programming to be >={MIN_SPEEDUP}x faster "
        f"than per-cell attach on the tiny serial LSTM severity sweep, "
        f"got {speedup:.2f}x"
    )
