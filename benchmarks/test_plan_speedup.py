"""Campaign-engine benchmark: trace-compiled plans vs the PR 4 backend.

Runs one Monte Carlo uniform-noise severity sweep (tiny CO2/LSTM task,
the tiny preset's native ``n_runs=3`` chips and ``mc_samples=4`` Bayesian
passes, 8 severity levels, evaluation capped at 16 windows) in two
configurations of the scenario-batched ``batched`` executor:

* **baseline** — the PR 4 engine: every sweep re-interprets the stacked
  forward (``plan=False``), paying full Python dispatch (``nn.Module``
  chains, ``Tensor`` wrappers, autograd-closure allocation), per-op
  intermediate allocation, and per-attach requantization + fault-pattern
  regeneration;
* **plans** — this PR's engine (``plan=True``, the default): the warmup
  sweep traces the stacked forward once, and every timed sweep *replays*
  the recorded flat numpy kernel sequence — no module dispatch, no
  ``Tensor`` graph, liveness-pooled ``out=`` buffers reused across
  replays, and deployment-frozen weights served as plan constants (the
  repeated sweeps derive identical per-cell fault seeds, so the
  value-keyed plan cache keeps hitting).

The LSTM is the strongest case on one CPU: its per-timestep dispatch
(``2T`` quantize calls plus ~25 tensor ops per step) is exactly what the
replay eliminates.  Per-(scenario, chip) values are asserted
bit-identical, throughput is recorded to ``BENCH_pr5.json`` (see
``docs/benchmarks.md``), and the ≥1.3x assertion is unconditional —
like the earlier engine benchmarks it needs no parallel hardware
(measured ~1.5-1.6x on the 1-CPU reference container).

Run explicitly (benchmarks are excluded from tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_plan_speedup.py -s
"""

import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, uniform_sweep
from repro.models import proposed
from repro.tensor import plan as plan_mod

from conftest import print_banner
from recorder import bench_path, record_bench

N_RUNS = 3  # the tiny preset's native chip count (mc_runs("tiny"))
MC_SAMPLES = 4  # the tiny preset's native Bayesian pass count (mc_samples("tiny"))
MAX_EVAL_SAMPLES = 16  # small eval batch: isolates per-op Python overhead
LEVELS = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4]
REPEATS = 8  # timed sweeps per configuration; min-of-repeats kills noise
MIN_SPEEDUP = 1.3


def _campaign(plan: bool) -> MonteCarloCampaign:
    task = build_task("co2", preset="tiny")
    method = proposed()
    model = trained_model(task, method, "tiny", seed=0)
    evaluator = make_evaluator(
        task.name,
        task.test_set,
        method,
        mc_samples=MC_SAMPLES,
        max_samples=MAX_EVAL_SAMPLES,
    )
    return MonteCarloCampaign(
        model,
        evaluator,
        n_runs=N_RUNS,
        base_seed=0,
        executor="batched",
        scenario_batched=True,
        plan=plan,
    )


@pytest.mark.paper_artifact("campaign-engine")
def test_plan_replay_sweep_speedup():
    print_banner(
        f"Campaign engine: PR4 scenario-batched vs trace-compiled plans "
        f"(co2/LSTM, {len(LEVELS)} levels, n_runs={N_RUNS}, "
        f"mc_samples={MC_SAMPLES})"
    )
    specs = uniform_sweep(LEVELS)
    cells = len(LEVELS) * N_RUNS
    timings = {}
    results = {}

    def _timed(label, campaign):
        campaign.sweep(specs)  # warmup (warms caches; traces the plan)
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            results[label] = campaign.sweep(specs)
            best = min(best, time.perf_counter() - start)
        timings[label] = best

    # Baseline: the PR 4 engine — every sweep re-interprets the forward.
    clear_memory_cache()
    plan_mod.clear_plans()
    _timed("pr4-scenario-batched", _campaign(plan=False))

    # This PR: trace once on warmup, replay every timed sweep.
    clear_memory_cache()
    plan_mod.clear_plans()
    _timed("plan-replay", _campaign(plan=True))

    for label in ("pr4-scenario-batched", "plan-replay"):
        print(
            f"{label:>20}: {timings[label] * 1000:7.1f}ms/sweep "
            f"({cells / timings[label]:7.1f} cells/s)"
        )

    for baseline_result, plan_result in zip(
        results["pr4-scenario-batched"], results["plan-replay"]
    ):
        np.testing.assert_array_equal(
            baseline_result.values, plan_result.values
        )

    speedup = timings["pr4-scenario-batched"] / timings["plan-replay"]
    print(f" speedup: {speedup:.2f}x (threshold {MIN_SPEEDUP:.1f}x)")
    target = bench_path("pr5")
    record_bench(
        "co2", "pr4-scenario-batched",
        cells / timings["pr4-scenario-batched"], 1.0, bench_file=target,
    )
    record_bench(
        "co2", "plan-replay", cells / timings["plan-replay"], speedup,
        bench_file=target,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"expected trace-compiled plan replay to be >={MIN_SPEEDUP}x faster "
        f"than the PR 4 scenario-batched backend on the tiny LSTM severity "
        f"sweep, got {speedup:.2f}x"
    )
