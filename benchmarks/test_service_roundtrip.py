"""Campaign-service benchmark: sharded daemon + content-addressed store (PR 8).

Runs a Monte Carlo bitflip severity sweep (tiny CO2/LSTM task, 8 severity
levels) three ways:

* **serial** — the in-process reference: ``run_robustness_sweep`` with the
  cache disabled, i.e. what a cold client computed locally before PR 8;
* **service-cold** — the same sweep through a freshly started campaign
  service with an empty result store: every cell is computed by the
  sharded workers and landed in the store;
* **service-warm** — the identical request repeated against the same
  daemon: every scenario must come back from the content-addressed store
  (``computed_cells == 0``) with nothing recomputed
  (``redundant_cells == 0``).

Asserted: both service rounds bit-identical to the serial reference,
zero-redundant accounting on the repeat, and a warm-round wall-clock win
over the cold round.  The cross-round speedup holds on any core count
(the warm round does no model work at all); the *cold-round vs serial*
comparison only asserts a win when the host actually has cores to shard
across (``os.cpu_count() >= 2``) — on a single-CPU container the sharded
round pays thread-switching overhead for no parallel gain, so there it is
only recorded, not asserted.

Recorded to ``BENCH_pr8.json`` (schema v3): the serial reference row, the
cold and warm service rounds (``ratio`` = speedup vs serial), and one row
per worker with its individual cells/s (``worker``/``cells``/``seconds``
extras — see ``docs/benchmarks.md``).

Run explicitly (benchmarks are excluded from tier-1)::

    REPRO_PRESET=tiny PYTHONPATH=src python -m pytest benchmarks/test_service_roundtrip.py -s
"""

import os
import time

import numpy as np
import pytest

from repro.eval import build_task, clear_memory_cache, run_robustness_sweep
from repro.eval.cache import ResultStore
from repro.faults import bitflip_sweep
from repro.models import proposed
from repro.serve import CampaignService, ServiceClient

from conftest import print_banner
from recorder import bench_path, record_bench

N_RUNS = 3
LEVELS = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4]
WORKERS = 2
MIN_WARM_SPEEDUP = 3.0  # warm round does no model work at all
MIN_COLD_SPEEDUP = 1.1  # asserted only with >= 2 real cores


@pytest.mark.paper_artifact("campaign-service")
def test_service_round_trip_speedup(tmp_path):
    print_banner(
        f"Campaign service: serial vs sharded daemon + result store "
        f"(co2/LSTM, {len(LEVELS)} levels, n_runs={N_RUNS}, "
        f"workers={WORKERS})"
    )
    methods = [proposed()]
    specs = bitflip_sweep(LEVELS)
    clear_memory_cache()
    task = build_task("co2", preset="tiny", seed=0)
    # Train (or load) once up front so the serial timing below measures
    # the campaign, not model training.
    run_robustness_sweep(
        task, methods, specs[:1], preset="tiny", seed=0, n_runs=1,
        use_cache=False,
    )

    t0 = time.perf_counter()
    reference = run_robustness_sweep(
        task, methods, specs, preset="tiny", seed=0, n_runs=N_RUNS,
        use_cache=False,
    )
    serial_s = time.perf_counter() - t0

    store = ResultStore(root=tmp_path / "store")
    service = CampaignService(workers=WORKERS, store=store)
    with service, ServiceClient(service.address) as client:
        t0 = time.perf_counter()
        cold, cold_stats = client.sweep(
            "co2", methods, specs, preset="tiny", seed=0, n_runs=N_RUNS
        )
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm, warm_stats = client.sweep(
            "co2", methods, specs, preset="tiny", seed=0, n_runs=N_RUNS
        )
        warm_s = time.perf_counter() - t0

    for name in reference.curves:
        np.testing.assert_array_equal(
            reference.curves[name].means, cold.curves[name].means
        )
        np.testing.assert_array_equal(
            reference.curves[name].stds, cold.curves[name].stds
        )
        np.testing.assert_array_equal(
            reference.curves[name].means, warm.curves[name].means
        )
    assert cold_stats["redundant_cells"] == 0
    assert warm_stats["computed_cells"] == 0
    assert warm_stats["redundant_cells"] == 0

    cells = cold_stats["served_cells"] + cold_stats["computed_cells"]
    cold_speedup = serial_s / cold_s
    warm_speedup = cold_s / warm_s
    print(f"serial        : {serial_s:8.3f}s  {cells / serial_s:8.1f} cells/s")
    print(f"service cold  : {cold_s:8.3f}s  {cells / cold_s:8.1f} cells/s "
          f"({cold_speedup:.2f}x vs serial)")
    print(f"service warm  : {warm_s:8.3f}s  {cells / warm_s:8.1f} cells/s "
          f"({warm_speedup:.2f}x vs cold)")
    for row in cold_stats["workers"]:
        print(f"  worker {row['worker']}: {row['cells']:3d} cells in "
              f"{row['seconds']:.3f}s = {row['cells_per_sec']:.1f} cells/s")

    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm store round only {warm_speedup:.2f}x over cold "
        f"(expected >= {MIN_WARM_SPEEDUP}x: it does no model work)"
    )
    if (os.cpu_count() or 1) >= 2:
        assert cold_speedup >= MIN_COLD_SPEEDUP, (
            f"sharded cold round only {cold_speedup:.2f}x over serial "
            f"with {os.cpu_count()} cores"
        )

    target = bench_path("pr8")
    record_bench("co2", "serial", cells / serial_s, 1.0, bench_file=target)
    record_bench(
        "co2", "service-cold", cells / cold_s, cold_speedup,
        bench_file=target,
        extra={"workers": WORKERS, "rounds": cold_stats["rounds"]},
    )
    record_bench(
        "co2", "service-warm", cells / warm_s, serial_s / warm_s,
        bench_file=target,
        extra={"served_cells": warm_stats["served_cells"]},
    )
    for row in cold_stats["workers"]:
        record_bench(
            "co2", f"worker-{row['worker']}", row["cells_per_sec"], 1.0,
            bench_file=target,
            extra={"worker": row["worker"], "cells": row["cells"],
                   "seconds": round(row["seconds"], 4)},
        )
