"""Fig. 6: robustness of M5 (audio) and the LSTM forecaster (CO2).

Paper reference: Fig. 6a shows M5 accuracy vs bit flips and additive
variation; Fig. 6b shows LSTM RMSE vs bit flips, additive variation and —
uniquely for this model — multiplicative variation, plus a uniform-noise
experiment.  Headline numbers: RMSE reduced by up to 30.2% (additive),
46.7% (multiplicative) and 51.84% (bit flips) vs the baselines.

Shape claims:

* M5: proposed accuracy ≥ conventional NN's at the strongest fault
  (within tolerance), degradation monotone-ish;
* LSTM: proposed RMSE grows more slowly than conventional — at the
  strongest variation level the proposed RMSE must be lower.
"""

import numpy as np
import pytest

from repro.eval import build_task, format_sweep, run_robustness_sweep, summarize_improvements
from repro.faults import (
    additive_sweep,
    bitflip_sweep,
    multiplicative_sweep,
    uniform_sweep,
)
from repro.models import all_methods

from conftest import print_banner, run_once

AUDIO_PANELS = [
    ("bitflip", bitflip_sweep([0.0, 0.02, 0.05, 0.10])),
    ("additive", additive_sweep([0.0, 0.05, 0.10, 0.20])),
]

LSTM_PANELS = [
    ("bitflip", bitflip_sweep([0.0, 0.02, 0.05, 0.10])),
    ("additive", additive_sweep([0.0, 0.1, 0.2, 0.4])),
    ("multiplicative", multiplicative_sweep([0.0, 0.2, 0.4, 0.8])),
    ("uniform", uniform_sweep([0.0, 0.1, 0.2, 0.4])),
]


@pytest.mark.paper_artifact("fig6a")
@pytest.mark.parametrize("kind,specs", AUDIO_PANELS, ids=[k for k, _ in AUDIO_PANELS])
def test_fig6a_audio_panel(benchmark, preset, kind, specs):
    task = build_task("audio", preset=preset)
    methods = all_methods(conventional_norm="batch")

    sweep = run_once(
        benchmark,
        lambda: run_robustness_sweep(task, methods, specs, preset=preset),
    )

    print_banner(f"Fig. 6a panel: audio / {kind}")
    print(format_sweep(sweep))
    print(summarize_improvements(sweep))

    proposed = sweep.curves["proposed"]
    conventional = sweep.curves["conventional"]
    assert proposed.means[-1] <= proposed.clean + 0.05
    assert proposed.means[-1] >= conventional.means[-1] - 0.10, (
        f"proposed ({proposed.means[-1]:.3f}) below conventional "
        f"({conventional.means[-1]:.3f}) at {kind} level {proposed.levels[-1]}"
    )


@pytest.mark.paper_artifact("fig6b")
@pytest.mark.parametrize("kind,specs", LSTM_PANELS, ids=[k for k, _ in LSTM_PANELS])
def test_fig6b_lstm_panel(benchmark, preset, kind, specs):
    task = build_task("co2", preset=preset)
    methods = all_methods(conventional_norm="batch")

    sweep = run_once(
        benchmark,
        lambda: run_robustness_sweep(task, methods, specs, preset=preset),
    )

    print_banner(f"Fig. 6b panel: CO2 LSTM / {kind} (RMSE, lower is better)")
    print(format_sweep(sweep))
    print(summarize_improvements(sweep))

    proposed = sweep.curves["proposed"]
    conventional = sweep.curves["conventional"]
    # RMSE grows under faults for every method (sanity).
    assert proposed.means[-1] >= proposed.clean * 0.8
    # Graceful degradation: at the strongest fault the proposed RMSE beats
    # the conventional NN's — the paper's headline LSTM result.
    assert proposed.means[-1] <= conventional.means[-1] * 1.2, (
        f"proposed RMSE ({proposed.means[-1]:.4f}) should not exceed "
        f"conventional ({conventional.means[-1]:.4f}) by >20% at "
        f"{kind} level {proposed.levels[-1]}"
    )
    # Relative degradation (slope) must be gentler for the proposed method.
    prop_growth = proposed.means[-1] / max(proposed.clean, 1e-9)
    conv_growth = conventional.means[-1] / max(conventional.clean, 1e-9)
    assert prop_growth <= conv_growth * 1.5
