"""Keyword spotting at the edge: M5 audio classifier under NVM faults.

Reproduces the paper's audio scenario (Google Speech Commands → synthetic
waveform commands, 8/8-bit M5 topology): trains the conventional NN, the
SpinDrop baseline, and the proposed inverted-normalization BayNN on the same
backbone, then compares their accuracy under increasing bit-flip rates and
additive conductance variation — the Fig. 6a experiment at example scale.

Run:  python examples/keyword_spotting.py
Runtime: first run ~3 min (trains three small-preset M5 variants); ~15 s
thereafter (fault campaigns re-run, models come from .repro_cache).
"""

import numpy as np

from repro.eval import build_task, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, additive_sweep, bitflip_sweep
from repro.models import conventional, proposed, spindrop
from repro.tensor import manual_seed

METHODS = [
    ("conventional NN", conventional()),
    ("SpinDrop", spindrop()),
    ("proposed", proposed()),
]


def main() -> None:
    manual_seed(0)
    print("=== Keyword spotting (M5, 8/8-bit) under NVM faults ===\n")
    task = build_task("audio", preset="small")
    print(f"train={len(task.train_set)} test={len(task.test_set)} "
          f"waveforms of length {task.train_set.inputs.shape[-1]}\n")

    models = {}
    for label, method in METHODS:
        print(f"training {label} ...")
        models[label] = (method, trained_model(task, method, "small"))

    for sweep_name, specs in (
        ("bit-flip rate", bitflip_sweep([0.0, 0.05, 0.10, 0.20])),
        ("additive variation sigma", additive_sweep([0.0, 0.2, 0.4, 0.8])),
    ):
        print(f"\naccuracy vs {sweep_name}:")
        header = f"{'level':>8} | " + " | ".join(f"{l:>16}" for l, _ in METHODS)
        print(header)
        print("-" * len(header))
        columns = {}
        for label, (method, model) in models.items():
            evaluator = make_evaluator("audio", task.test_set, method, mc_samples=6)
            campaign = MonteCarloCampaign(model, evaluator, n_runs=5, base_seed=0)
            columns[label] = campaign.sweep(specs)
        for i, spec in enumerate(specs):
            cells = [f"{spec.level:8.2f}"]
            for label, _ in METHODS:
                r = columns[label][i]
                cells.append(f"{r.mean:8.3f} ±{r.std:5.3f}")
            print(" | ".join(cells))

        worst = specs[-1]
        base = columns["conventional NN"][-1].mean
        ours = columns["proposed"][-1].mean
        if base > 0:
            print(f"  -> at {worst.describe()}: proposed improves accuracy by "
                  f"{100 * (ours - base) / base:+.1f}% over the conventional NN")


if __name__ == "__main__":
    main()
