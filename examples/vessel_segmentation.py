"""Retinal-vessel segmentation with a binary U-Net (paper Fig. 5b scenario).

Trains the 1-bit-weight / 4-bit-PACT-activation U-Net with group-wise
inverted normalization on procedurally generated vessel trees, renders a
test prediction as ASCII art, and measures mIoU under bit-flip faults.

Run:  python examples/vessel_segmentation.py
Runtime: first run ~3 min (trains the small-preset binary U-Net); ~5 s
thereafter with the cached model.
"""

import numpy as np

from repro.core import mc_forward
from repro.eval import build_task, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, bitflip_sweep
from repro.models import proposed
from repro.tensor import Tensor, manual_seed
from repro.train import binary_miou


def ascii_render(mask: np.ndarray, title: str) -> None:
    print(title)
    chars = np.where(mask, "#", ".")
    step = max(1, mask.shape[0] // 32)
    for row in chars[::step]:
        print("  " + "".join(row[::step]))


def main() -> None:
    manual_seed(0)
    print("=== Vessel segmentation (binary U-Net, 4-bit PACT) ===\n")
    task = build_task("vessels", preset="small")
    method = proposed()
    model = trained_model(task, method, "small")

    # --- render one MC-averaged prediction ----------------------------------
    x = Tensor(task.test_set.inputs[:1])
    logits = mc_forward(model, x, 8).mean(axis=0)[0]
    prediction = logits > 0.0
    truth = task.test_set.targets[0] > 0.5
    ascii_render(truth, "ground truth:")
    ascii_render(prediction, "\nMC-averaged prediction:")
    print(f"\nsample mIoU: {binary_miou(prediction, truth):.3f}")

    # --- fault robustness -----------------------------------------------------
    evaluator = make_evaluator("vessels", task.test_set, method, mc_samples=6)
    campaign = MonteCarloCampaign(model, evaluator, n_runs=5, base_seed=0)
    print("\nmIoU vs bit-flip rate (binary U-Net weights):")
    for i, spec in enumerate(bitflip_sweep([0.0, 0.05, 0.10, 0.20])):
        r = campaign.run(spec, i)
        print(f"  {spec.level * 100:5.1f}% -> {r.mean:.3f} ± {r.std:.3f}")


if __name__ == "__main__":
    main()
