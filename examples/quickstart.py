"""Quickstart: inverted normalization in a small Bayesian CNN.

Builds a compact convolutional classifier whose normalization layers are the
paper's InvertedNorm (affine transformation first, then normalization, with
stochastic affine dropout), trains it on the synthetic 10-class image task,
and then demonstrates the two headline capabilities:

1. Monte Carlo Bayesian inference — averaging stochastic forward passes
   yields calibrated predictions with per-input uncertainty (NLL).
2. Inherent fault tolerance — accuracy degrades gracefully when NVM-style
   bit-flip faults are injected into the quantized weights.

Run:  python examples/quickstart.py
Runtime: ~15 s on a laptop CPU (trains its small CNN from scratch each run).
"""

import numpy as np

from repro import nn
from repro.core import BayesianClassifier, InvertedNorm
from repro.data import make_image_task
from repro.faults import FaultInjector, FaultSpec
from repro.quant import QuantConv2d, SignActivation
from repro.tensor import Tensor, manual_seed
from repro.train import Adam, Trainer, cross_entropy


def build_model() -> nn.Module:
    """Binary-weight CNN with InvertedNorm after every convolution."""
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1),        # full-precision stem
        InvertedNorm(16, p=0.3),
        SignActivation(),
        QuantConv2d(16, 32, 3, stride=2, padding=1, weight_bits=1),
        InvertedNorm(32, p=0.3),
        SignActivation(),
        QuantConv2d(32, 32, 3, padding=1, weight_bits=1),
        InvertedNorm(32, p=0.3),
        nn.GlobalAvgPool2d(),
        nn.Linear(32, 10),                     # full-precision classifier
    )


def main() -> None:
    manual_seed(42)
    print("=== Inverted Normalization quickstart ===\n")

    train_set, test_set = make_image_task(
        n_train_per_class=40, n_test_per_class=10, size=16, seed=0
    )
    print(f"dataset: {len(train_set)} train / {len(test_set)} test images")

    model = build_model()
    print(f"model: {model.num_parameters()} parameters "
          f"(binary conv weights, stochastic affine norms)\n")

    trainer = Trainer(model, Adam(model.parameters(), lr=3e-3), cross_entropy)
    history = trainer.fit(train_set, epochs=10, batch_size=32, verbose=True)
    print(f"\nfinal training loss: {history.final_loss:.4f}")

    # --- Bayesian inference -------------------------------------------------
    clf = BayesianClassifier(model, num_samples=10)
    x_test = Tensor(test_set.inputs)
    accuracy = clf.accuracy(x_test, test_set.targets)
    nll = clf.nll(x_test, test_set.targets)
    print(f"\nMonte Carlo accuracy (10 samples): {accuracy:.3f}")
    print(f"predictive NLL: {nll:.3f}")

    per_input = clf.per_input_nll(x_test)
    print(f"per-input NLL: min={per_input.min():.3f} "
          f"median={np.median(per_input):.3f} max={per_input.max():.3f}")

    # --- Fault tolerance ----------------------------------------------------
    print("\nbit-flip robustness (weights of the binary conv layers):")
    injector = FaultInjector(model)
    for rate in (0.0, 0.05, 0.10, 0.20):
        spec = FaultSpec(kind="bitflip" if rate else "none", level=rate)
        accs = []
        for chip in range(5):  # five simulated chip instances
            injector.attach(spec, np.random.default_rng(chip))
            accs.append(clf.accuracy(x_test, test_set.targets))
            injector.detach()
        print(f"  {rate * 100:5.1f}% flips -> accuracy "
              f"{np.mean(accs):.3f} ± {np.std(accs):.3f}")

    print("\nDone. See examples/keyword_spotting.py and "
          "examples/co2_forecasting.py for the paper's other tasks.")


if __name__ == "__main__":
    main()
