"""CO2 forecasting with a Bayesian quantized LSTM (paper Fig. 6b scenario).

Trains the 8-bit two-layer LSTM forecaster with the proposed inverted
normalization on the synthetic Mauna-Loa-shaped CO2 record, then:

1. reports one-step RMSE with Monte Carlo uncertainty bands,
2. rolls an autoregressive multi-step forecast,
3. compares RMSE degradation under additive / multiplicative conductance
   variation against the conventional LSTM.

Run:  python examples/co2_forecasting.py
Runtime: first run ~2 min (trains the small-preset LSTMs into .repro_cache);
~5 s thereafter.
"""

import numpy as np

from repro.core import BayesianRegressor
from repro.data import make_co2_task
from repro.eval import build_task, make_evaluator, trained_model
from repro.faults import MonteCarloCampaign, additive_sweep, multiplicative_sweep
from repro.models import conventional, proposed
from repro.tensor import Tensor, manual_seed


def main() -> None:
    manual_seed(0)
    print("=== Atmospheric CO2 forecasting (2-layer LSTM, 8-bit) ===\n")
    task = build_task("co2", preset="small")
    forecast = make_co2_task(n_months=360, window=18, seed=0)

    print("training proposed (inverted norm) and conventional LSTMs ...")
    model_p = trained_model(task, proposed(), "small")
    model_c = trained_model(task, conventional(), "small")

    # --- one-step prediction with uncertainty -------------------------------
    reg = BayesianRegressor(model_p, num_samples=12)
    x_test = Tensor(task.test_set.inputs)
    mean, std = reg.predict_with_std(x_test)
    rmse_norm = float(np.sqrt(((mean - task.test_set.targets) ** 2).mean()))
    print(f"\nproposed one-step RMSE (normalized): {rmse_norm:.4f}")
    print(f"RMSE in ppm: {rmse_norm * forecast.std:.3f}")
    print(f"mean predictive std (epistemic):     {std.mean():.4f}")

    # --- autoregressive rollout ---------------------------------------------
    steps = 12
    seed_window = Tensor(task.test_set.inputs[:1])
    model_p.eval()
    rollout = model_p.forecast(seed_window, steps=steps)[0]
    truth = task.test_set.targets[:steps]
    print(f"\n{steps}-month autoregressive rollout (ppm):")
    for month, (pred, actual) in enumerate(
        zip(forecast.denormalize(rollout), forecast.denormalize(truth)), start=1
    ):
        print(f"  month +{month:2d}: predicted {pred:7.2f}  actual {actual:7.2f}")

    # --- variation robustness (Fig. 6b right panels) -------------------------
    for name, specs in (
        ("additive", additive_sweep([0.0, 0.1, 0.2, 0.4])),
        ("multiplicative", multiplicative_sweep([0.0, 0.2, 0.4, 0.8])),
    ):
        print(f"\nRMSE vs {name} conductance variation (lower is better):")
        print(f"{'sigma':>8} | {'conventional':>16} | {'proposed':>16}")
        for i, spec in enumerate(specs):
            row = [f"{spec.level:8.2f}"]
            for method, model in ((conventional(), model_c), (proposed(), model_p)):
                evaluator = make_evaluator("co2", task.test_set, method, mc_samples=6)
                campaign = MonteCarloCampaign(model, evaluator, n_runs=5, base_seed=0)
                r = campaign.run(spec, i)
                row.append(f"{r.mean:8.4f} ±{r.std:6.4f}")
            print(" | ".join(row))


if __name__ == "__main__":
    main()
