"""Out-of-distribution detection with predictive NLL (paper Fig. 7).

Trains the binarized ResNet-18 with inverted normalization on the synthetic
image task, then progressively shifts the test distribution (rotations in
7-degree steps; escalating uniform noise) and shows accuracy falling while
predictive NLL — the paper's uncertainty score — rises, enabling OOD
detection by thresholding at the clean-set average NLL.

Run:  python examples/ood_detection.py
Runtime: first run ~4 min (trains the small-preset binarized ResNet-18);
~20 s thereafter (the shift sweep re-runs, the model is cached).
"""

import numpy as np

from repro.core import BayesianClassifier
from repro.data import noise_stages, rotation_stages
from repro.eval import build_task, trained_model
from repro.models import proposed
from repro.tensor import manual_seed
from repro.uncertainty import evaluate_shift_sweep


def print_sweep(result, unit: str) -> None:
    print(f"{'shift':>8} | {'accuracy':>9} | {'NLL':>7} | {'flagged OOD':>11}")
    print("-" * 46)
    for stage in result.stages:
        print(
            f"{stage.magnitude:7.1f}{unit} | {stage.accuracy:9.3f} | "
            f"{stage.nll:7.3f} | {stage.detection_rate:10.1%}"
        )
    print(f"overall detection rate on shifted data: "
          f"{result.overall_detection_rate():.1%}\n")


def main() -> None:
    manual_seed(0)
    print("=== OOD detection via predictive NLL (Fig. 7) ===\n")
    task = build_task("image", preset="small")
    model = trained_model(task, proposed(), "small")
    clf = BayesianClassifier(model, num_samples=8)

    inputs = task.test_set.inputs[:100]
    labels = task.test_set.targets[:100]

    print("rotation sweep (7-degree increments, 12 stages):")
    rotation = evaluate_shift_sweep(
        clf, inputs, labels, "rotation", rotation_stages()[::2]
    )
    print_sweep(rotation, "°")

    print("uniform-noise sweep:")
    noise = evaluate_shift_sweep(
        clf, inputs, labels, "uniform", noise_stages(max_strength=2.0, stages=5)
    )
    print_sweep(noise, " ")

    print("The NLL threshold (average clean-test NLL) separates "
          f"in-distribution (NLL<{rotation.threshold:.3f}) from shifted inputs.")


if __name__ == "__main__":
    main()
