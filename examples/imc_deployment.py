"""Deploying a quantized network onto simulated STT-MRAM crossbars.

Walks the full IMC stack the paper's Section II-D describes:

1. device level — stochastic switching curves and thermal resistance
   distributions of the magnetic tunnel junction (Fig. 4),
2. array level — programming an 8-bit classifier's weights as differential
   conductance pairs, with DAC/ADC quantization and tiling,
3. network level — accuracy of the deployed model vs the digital reference
   as conductance variation and stuck cells grow.

Run:  python examples/imc_deployment.py
Runtime: ~1 s with a warm model cache; first run additionally trains the
small-preset M5 (~1 min).
"""

import numpy as np

from repro.data import make_audio_task
from repro.eval import build_task, trained_model
from repro.imc import (
    CrossbarConfig,
    MTJParams,
    bit_error_rate,
    deploy_linear_layers,
    sample_resistances,
    switching_curve,
)
from repro.models import proposed
from repro.tensor import Tensor, manual_seed, no_grad


def device_level() -> None:
    print("--- device level: MTJ switching (Fig. 4a) ---")
    pulses = np.logspace(0, 3, 7)  # 1 ns .. 1 us
    curves = switching_curve([0.35, 0.40, 0.45], pulses)
    header = "pulse[ns] " + " ".join(f"{v:>8.2f}V" for v in curves)
    print(header)
    for i, t in enumerate(pulses):
        row = f"{t:9.1f} " + " ".join(f"{curves[v][i]:9.4f}" for v in curves)
        print(row)

    print("\n--- device level: thermal resistance distributions (Fig. 4b) ---")
    rng = np.random.default_rng(0)
    params = MTJParams(sigma_r=0.12)
    for temp in (300, 400, 500):
        r_p, r_ap = sample_resistances(temp, 5000, rng, params)
        print(
            f"T={temp}K: R_P={r_p.mean():7.0f}±{r_p.std():5.0f} Ω  "
            f"R_AP={r_ap.mean():7.0f}±{r_ap.std():5.0f} Ω  "
            f"read-BER={bit_error_rate(temp, params):.2e}"
        )


def network_level() -> None:
    print("\n--- network level: deployed M5 classifier ---")
    manual_seed(0)
    task = build_task("audio", preset="small")
    method = proposed()
    model = trained_model(task, method, "small")

    x = Tensor(task.test_set.inputs)
    y = task.test_set.targets

    def accuracy(m):
        m.eval()
        with no_grad():
            return float((m(x).data.argmax(axis=1) == y).mean())

    print(f"digital reference accuracy: {accuracy(model):.3f}")

    scenarios = [
        ("ideal crossbar", CrossbarConfig.ideal()),
        ("8b DAC/ADC", CrossbarConfig(dac_bits=8, adc_bits=8)),
        ("+5% conductance var", CrossbarConfig(sigma_conductance=0.05)),
        ("+20% conductance var", CrossbarConfig(sigma_conductance=0.20)),
        ("+5% stuck cells", CrossbarConfig(stuck_rate=0.05)),
    ]
    for label, config in scenarios:
        # Fresh copy of the trained model, classifier head on a crossbar.
        deployed = task.build_model(method, seed=0)
        deployed.load_state_dict(model.state_dict())
        n = deploy_linear_layers(deployed, config, np.random.default_rng(7))
        print(f"{label:>22} ({n} layer on crossbar): "
              f"accuracy {accuracy(deployed):.3f}")


def main() -> None:
    print("=== IMC deployment walk-through ===\n")
    device_level()
    network_level()


if __name__ == "__main__":
    main()
